// Coherence auditor tests: clean bills of health across configurations, zombies tolerated,
// and deliberate corruption of each audited invariant caught with a structured report.

#include <gtest/gtest.h>

#include <string>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/sim/check.h"
#include "src/verify/coherence_auditor.h"

namespace ppcmm {
namespace {

// A small but representative workload: exec, touches, fork + COW writes, mmap/munmap,
// context switches.
void RunWorkload(Kernel& kernel) {
  const TaskId a = kernel.CreateTask("a");
  kernel.Exec(a, ExecImage{});
  kernel.SwitchTo(a);
  for (uint32_t p = 0; p < 8; ++p) {
    kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize), AccessKind::kStore);
  }
  const TaskId b = kernel.Fork(a);
  kernel.SwitchTo(b);
  for (uint32_t p = 0; p < 8; ++p) {
    kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize),
                     p % 2 == 0 ? AccessKind::kStore : AccessKind::kLoad);
  }
  const uint32_t start = kernel.Mmap(24);
  for (uint32_t p = 0; p < 24; ++p) {
    kernel.UserTouch(EffAddr::FromPage(start + p), AccessKind::kStore);
  }
  kernel.Munmap(start, 24);
  kernel.SwitchTo(a);
  for (uint32_t p = 0; p < 8; ++p) {
    kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize), AccessKind::kStore);
  }
  kernel.Exit(b);
  kernel.RunIdle(Cycles(20000));
}

class AuditorConfigs : public ::testing::TestWithParam<int> {
 protected:
  static OptimizationConfig Config() {
    switch (GetParam()) {
      case 0:
        return OptimizationConfig::Baseline();
      case 1:
        return OptimizationConfig::AllOptimizations();
      default:
        return OptimizationConfig::AllPlusUncachedPageTables();
    }
  }
};

TEST_P(AuditorConfigs, CleanAfterWorkloadOn604) {
  System sys(MachineConfig::Ppc604(185), Config());
  CoherenceAuditor auditor(sys.kernel());
  RunWorkload(sys.kernel());
  auditor.Audit();
  EXPECT_GT(auditor.stats().tlb_entries_checked, 0u);
  EXPECT_GT(auditor.stats().htab_entries_checked, 0u);
  EXPECT_GT(auditor.stats().pte_mappings_checked, 0u);
}

TEST_P(AuditorConfigs, CleanAfterWorkloadOn603) {
  System sys(MachineConfig::Ppc603(80), Config());
  CoherenceAuditor auditor(sys.kernel());
  RunWorkload(sys.kernel());
  auditor.Audit();
  EXPECT_GT(auditor.stats().tlb_entries_checked, 0u);
}

TEST_P(AuditorConfigs, CleanAfterWorkloadOn603DirectReload) {
  OptimizationConfig config = Config();
  config.no_htab_direct_reload = true;
  System sys(MachineConfig::Ppc603(80), config);
  CoherenceAuditor auditor(sys.kernel());
  RunWorkload(sys.kernel());
  auditor.Audit();
  EXPECT_EQ(auditor.stats().htab_entries_checked, 0u) << "direct reload uses no HTAB";
}

INSTANTIATE_TEST_SUITE_P(Configs, AuditorConfigs, ::testing::Values(0, 1, 2));

TEST(CoherenceAuditorTest, LazyFlushZombiesAreCountedNotFlagged) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId a = kernel.CreateTask("a");
  kernel.Exec(a, ExecImage{});
  kernel.SwitchTo(a);
  for (uint32_t p = 0; p < 8; ++p) {
    kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize), AccessKind::kStore);
  }
  // Exec flushes the context lazily: the old translations become zombies in place.
  kernel.Exec(a, ExecImage{});
  CoherenceAuditor auditor(kernel);
  auditor.Audit();
  EXPECT_GT(auditor.stats().htab_zombies_seen + auditor.stats().tlb_zombies_seen, 0u);
}

TEST(CoherenceAuditorTest, PeriodicModeAuditsEveryNthEvent) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  CoherenceAuditor auditor(sys.kernel());
  auditor.SetPeriod(4);
  for (int i = 0; i < 10; ++i) {
    auditor.NoteEvent();
  }
  EXPECT_EQ(auditor.stats().audits, 2u);
}

// ---- deliberate corruption: every sabotage must be caught with a structured report ----

TEST(CoherenceAuditorTest, CatchesBrokenTlbInvalidateOnMunmap) {
  // Eager flushing with the tlbie sabotaged: munmap clears the HTAB entry and the Linux PTE
  // but leaves the TLB entry live — the classic missing-flush kernel bug.
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  const TaskId a = kernel.CreateTask("a");
  kernel.Exec(a, ExecImage{});
  kernel.SwitchTo(a);
  const uint32_t start = kernel.Mmap(4);
  for (uint32_t p = 0; p < 4; ++p) {
    kernel.UserTouch(EffAddr::FromPage(start + p), AccessKind::kStore);
  }
  CoherenceAuditor auditor(kernel);
  auditor.Audit();  // clean before the sabotage

  kernel.flusher().TestOnlyBreakTlbInvalidate(true);
  kernel.Munmap(start, 4);
  try {
    auditor.Audit();
    FAIL() << "stale TLB entry not detected";
  } catch (const CheckFailure& failure) {
    const std::string what = failure.what();
    EXPECT_NE(what.find("CoherenceAuditor violation"), std::string::npos) << what;
    EXPECT_NE(what.find("tier=TLB"), std::string::npos) << what;
    EXPECT_NE(what.find("vsid=0x"), std::string::npos) << what;
  }
}

TEST(CoherenceAuditorTest, CatchesLostDirtyBit) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  const TaskId a = kernel.CreateTask("a");
  kernel.Exec(a, ExecImage{});
  kernel.SwitchTo(a);
  const EffAddr ea(kUserDataBase);
  kernel.UserTouch(ea, AccessKind::kStore);  // C bit set in the TLB, dirty in the PTE
  CoherenceAuditor auditor(kernel);
  auditor.Audit();

  // Sabotage: clear the Linux dirty bit behind the MMU's back.
  kernel.task(a).mm->page_table->Update(ea, [](LinuxPte& p) { p.dirty = false; }, nullptr);
  EXPECT_THROW(auditor.Audit(), CheckFailure);
}

TEST(CoherenceAuditorTest, CatchesFrameMismatch) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  const TaskId a = kernel.CreateTask("a");
  kernel.Exec(a, ExecImage{});
  kernel.SwitchTo(a);
  const EffAddr ea(kUserDataBase);
  const EffAddr other(kUserDataBase + kPageSize);
  kernel.UserTouch(ea, AccessKind::kStore);
  kernel.UserTouch(other, AccessKind::kStore);
  CoherenceAuditor auditor(kernel);
  auditor.Audit();

  // Sabotage: repoint the first PTE at the second page's frame without any flush.
  const uint32_t hijacked = kernel.task(a).mm->page_table->LookupQuiet(other)->frame;
  kernel.task(a).mm->page_table->Update(ea, [hijacked](LinuxPte& p) { p.frame = hijacked; },
                                        nullptr);
  EXPECT_THROW(auditor.Audit(), CheckFailure);
}

TEST(CoherenceAuditorTest, CatchesStaleWritableAfterSabotagedCow) {
  // Fork write-protects the parent's pages; with the tlbie sabotaged the parent's TLB still
  // says writable while the PTE says read-only — exactly the window a COW bug opens.
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  const TaskId a = kernel.CreateTask("a");
  kernel.Exec(a, ExecImage{});
  kernel.SwitchTo(a);
  kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
  CoherenceAuditor auditor(kernel);
  auditor.Audit();

  kernel.flusher().TestOnlyBreakTlbInvalidate(true);
  kernel.Fork(a);
  EXPECT_THROW(auditor.Audit(), CheckFailure);
}

}  // namespace
}  // namespace ppcmm
