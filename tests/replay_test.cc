// Checked-in replay corpus: every tests/replays/*.replay file must parse and run
// divergence-free through the full strategy x fast-path matrix under both the baseline and
// the fully-optimized preset. The corpus pins down op mixes that once mattered (cutoff
// boundary remaps, fork/COW/exit interleavings, framebuffer BAT rewrites under tlbia) so
// they stay covered even if the generator's weights drift.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/verify/fuzz/differential.h"

namespace ppcmm {
namespace {

std::vector<std::filesystem::path> ReplayFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(PPCMM_REPLAY_DIR)) {
    if (entry.path().extension() == ".replay") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ReplayCorpus, HasTheCheckedInFiles) { EXPECT_GE(ReplayFiles().size(), 3u); }

class ReplayFile : public ::testing::TestWithParam<std::filesystem::path> {};

TEST_P(ReplayFile, RunsCleanAcrossTheMatrix) {
  std::ifstream in(GetParam());
  ASSERT_TRUE(in) << "cannot open " << GetParam();
  std::ostringstream text;
  text << in.rdbuf();

  FuzzStream stream;
  std::string error;
  ASSERT_TRUE(ParseStream(text.str(), &stream, &error)) << GetParam() << ": " << error;
  ASSERT_FALSE(stream.ops.empty());

  // Replays named smp_* carry cpu_switch ops; run those on the machine width they were
  // minimized at (cpu_switch is a skip at ncpus=1, which would silently uncover the mix).
  const bool smp = GetParam().stem().string().rfind("smp_", 0) == 0;
  const uint32_t ncpus = smp ? 4 : 1;
  for (const char* preset_name : {"baseline", "all", "all_fb_bat"}) {
    const FuzzPreset preset = FuzzPresetByName(preset_name);
    const MatrixResult result = RunMatrix(stream, preset.config, preset.name,
                                          /*check_period=*/16,
                                          /*break_tlb_invalidate=*/false, ncpus);
    EXPECT_FALSE(result.diverged) << GetParam() << "\n" << result.first_failure.report;
    EXPECT_EQ(result.runs, 6u);
  }
}

std::string ReplayCaseName(const ::testing::TestParamInfo<std::filesystem::path>& info) {
  std::string name = info.param.stem().string();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, ReplayFile, ::testing::ValuesIn(ReplayFiles()),
                         ReplayCaseName);

}  // namespace
}  // namespace ppcmm
