// PhysicalMemory tests: round-trips, bounds checking, bulk operations.

#include <gtest/gtest.h>

#include "src/sim/check.h"
#include "src/sim/memory.h"

namespace ppcmm {
namespace {

TEST(PhysicalMemoryTest, StartsZeroed) {
  PhysicalMemory mem(64 * 1024);
  EXPECT_EQ(mem.size_bytes(), 64u * 1024);
  EXPECT_EQ(mem.num_frames(), 16u);
  for (uint32_t frame = 0; frame < mem.num_frames(); ++frame) {
    EXPECT_TRUE(mem.FrameIsZero(frame));
  }
}

TEST(PhysicalMemoryTest, ReadWriteRoundTrip) {
  PhysicalMemory mem(64 * 1024);
  mem.Write8(PhysAddr(100), 0xAB);
  EXPECT_EQ(mem.Read8(PhysAddr(100)), 0xAB);
  mem.Write32(PhysAddr(200), 0xDEADBEEF);
  EXPECT_EQ(mem.Read32(PhysAddr(200)), 0xDEADBEEFu);
  mem.Write64(PhysAddr(300), 0x0123456789ABCDEFull);
  EXPECT_EQ(mem.Read64(PhysAddr(300)), 0x0123456789ABCDEFull);
}

TEST(PhysicalMemoryTest, RejectsUnalignedSize) {
  EXPECT_THROW(PhysicalMemory(1000), CheckFailure);
  EXPECT_THROW(PhysicalMemory(0), CheckFailure);
}

TEST(PhysicalMemoryTest, BoundsChecked) {
  PhysicalMemory mem(8 * 1024);
  EXPECT_THROW(mem.Read8(PhysAddr(8 * 1024)), CheckFailure);
  EXPECT_THROW(mem.Write32(PhysAddr(8 * 1024 - 2), 1), CheckFailure);
  EXPECT_THROW(mem.Read64(PhysAddr(8 * 1024 - 7)), CheckFailure);
  // Last valid positions are fine.
  EXPECT_NO_THROW(mem.Read8(PhysAddr(8 * 1024 - 1)));
  EXPECT_NO_THROW(mem.Read64(PhysAddr(8 * 1024 - 8)));
}

TEST(PhysicalMemoryTest, CopyAndFill) {
  PhysicalMemory mem(16 * 1024);
  mem.Fill(PhysAddr(0), 0x5A, 256);
  mem.Copy(PhysAddr(4096), PhysAddr(0), 256);
  EXPECT_EQ(mem.Read8(PhysAddr(4096)), 0x5A);
  EXPECT_EQ(mem.Read8(PhysAddr(4096 + 255)), 0x5A);
  EXPECT_EQ(mem.Read8(PhysAddr(4096 + 256)), 0);
}

TEST(PhysicalMemoryTest, CopyRejectsOverlap) {
  PhysicalMemory mem(16 * 1024);
  EXPECT_THROW(mem.Copy(PhysAddr(0), PhysAddr(100), 256), CheckFailure);
  EXPECT_THROW(mem.Copy(PhysAddr(100), PhysAddr(0), 256), CheckFailure);
  // Disjoint is fine.
  EXPECT_NO_THROW(mem.Copy(PhysAddr(0), PhysAddr(256), 256));
}

TEST(PhysicalMemoryTest, ZeroFrame) {
  PhysicalMemory mem(16 * 1024);
  mem.Fill(PhysAddr::FromFrame(2), 0xFF, kPageSize);
  EXPECT_FALSE(mem.FrameIsZero(2));
  mem.ZeroFrame(2);
  EXPECT_TRUE(mem.FrameIsZero(2));
  // Neighbours untouched.
  mem.Fill(PhysAddr::FromFrame(1), 0x11, kPageSize);
  mem.ZeroFrame(2);
  EXPECT_FALSE(mem.FrameIsZero(1));
}

}  // namespace
}  // namespace ppcmm
