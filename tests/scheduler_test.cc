// Scheduler, wait-queue, blocking-pipe, and cooperative-harness tests.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/kernel/scheduler.h"
#include "src/sim/check.h"
#include "src/workloads/coop.h"

namespace ppcmm {
namespace {

TaskId SpawnStd(Kernel& kernel, const char* name) {
  const TaskId id = kernel.CreateTask(name);
  kernel.Exec(id, ExecImage{.text_pages = 4, .data_pages = 32, .stack_pages = 2});
  return id;
}

TEST(SchedulerUnitTest, FifoOrder) {
  Scheduler scheduler;
  scheduler.MakeRunnable(TaskId{1});
  scheduler.MakeRunnable(TaskId{2});
  scheduler.MakeRunnable(TaskId{3});
  scheduler.MakeRunnable(TaskId{2});  // duplicate ignored
  EXPECT_EQ(scheduler.RunnableCount(), 3u);
  EXPECT_EQ(scheduler.PickNext(), TaskId{1});
  EXPECT_EQ(scheduler.PickNext(), TaskId{2});
  EXPECT_EQ(scheduler.PickNext(), TaskId{3});
  EXPECT_EQ(scheduler.PickNext(), std::nullopt);
}

TEST(SchedulerUnitTest, RemoveDropsQueuedTask) {
  Scheduler scheduler;
  scheduler.MakeRunnable(TaskId{1});
  scheduler.MakeRunnable(TaskId{2});
  scheduler.Remove(TaskId{1});
  EXPECT_FALSE(scheduler.IsQueued(TaskId{1}));
  EXPECT_EQ(scheduler.PickNext(), TaskId{2});
  scheduler.Remove(TaskId{9});  // removing an unqueued task is harmless
}

TEST(WaitQueueUnitTest, FifoAndRemove) {
  WaitQueue queue;
  EXPECT_TRUE(queue.Empty());
  queue.Add(TaskId{1});
  queue.Add(TaskId{2});
  queue.Add(TaskId{3});
  queue.Remove(TaskId{2});
  EXPECT_EQ(queue.Size(), 2u);
  EXPECT_EQ(queue.PopOne(), TaskId{1});
  EXPECT_EQ(queue.PopOne(), TaskId{3});
  EXPECT_EQ(queue.PopOne(), std::nullopt);
}

TEST(SchedulerTest, YieldRoundRobins) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId a = SpawnStd(kernel, "a");
  const TaskId b = SpawnStd(kernel, "b");
  const TaskId c = SpawnStd(kernel, "c");
  kernel.SwitchTo(a);
  kernel.Yield();
  EXPECT_EQ(kernel.current(), b);
  kernel.Yield();
  EXPECT_EQ(kernel.current(), c);
  kernel.Yield();
  EXPECT_EQ(kernel.current(), a);  // wrapped around
}

TEST(SchedulerTest, YieldWithNothingElseRunnableStaysPut) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId a = SpawnStd(kernel, "a");
  kernel.SwitchTo(a);
  kernel.Yield();
  EXPECT_EQ(kernel.current(), a);
}

TEST(SchedulerTest, DeadlockDetection) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId only = SpawnStd(kernel, "only");
  kernel.SwitchTo(only);
  WaitQueue queue;
  EXPECT_THROW(kernel.BlockCurrentOn(queue), CheckFailure);
}

TEST(SchedulerTest, ExitCleansQueues) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId a = SpawnStd(kernel, "a");
  const TaskId b = SpawnStd(kernel, "b");
  kernel.SwitchTo(a);
  kernel.Exit(b);
  EXPECT_FALSE(kernel.scheduler().IsQueued(b));
  kernel.Exit(a);
  EXPECT_EQ(kernel.TaskCount(), 0u);
}

// ---- CoopHarness: real blocking semantics ----

TEST(CoopHarnessTest, ProducerConsumerThroughABlockingPipe) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId producer = SpawnStd(kernel, "producer");
  const TaskId consumer = SpawnStd(kernel, "consumer");
  const uint32_t pipe = kernel.CreatePipe();
  constexpr uint32_t kTotal = 64 * 1024;  // 16 pipe-fulls: plenty of blocking both ways

  CoopHarness harness(kernel);
  uint32_t produced = 0;
  uint32_t consumed = 0;
  harness.AddTask(producer, [&] {
    kernel.UserTouchRange(EffAddr(kUserDataBase), kPageSize, 32, AccessKind::kStore);
    for (uint32_t done = 0; done < kTotal; done += PipeState::kCapacity) {
      kernel.PipeWriteBlocking(pipe, EffAddr(kUserDataBase), PipeState::kCapacity);
      produced += PipeState::kCapacity;
    }
  });
  harness.AddTask(consumer, [&] {
    for (uint32_t done = 0; done < kTotal; done += PipeState::kCapacity) {
      kernel.PipeReadBlocking(pipe, EffAddr(kUserDataBase + 0x8000), PipeState::kCapacity);
      consumed += PipeState::kCapacity;
    }
  });
  harness.Run();

  EXPECT_EQ(produced, kTotal);
  EXPECT_EQ(consumed, kTotal);
  EXPECT_GT(sys.counters().context_switches, 8u);  // real back-and-forth happened
}

TEST(CoopHarnessTest, SmallWritesLargeReadsInterleave) {
  // Writer emits 1 KB chunks, reader demands 4 KB chunks: both block repeatedly.
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId writer = SpawnStd(kernel, "w");
  const TaskId reader = SpawnStd(kernel, "r");
  const uint32_t pipe = kernel.CreatePipe();

  CoopHarness harness(kernel);
  harness.AddTask(writer, [&] {
    kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
    for (int i = 0; i < 32; ++i) {
      kernel.PipeWriteBlocking(pipe, EffAddr(kUserDataBase), 1024);
    }
  });
  uint32_t total_read = 0;
  harness.AddTask(reader, [&] {
    for (int i = 0; i < 8; ++i) {
      kernel.PipeReadBlocking(pipe, EffAddr(kUserDataBase + 0x4000), 4096);
      total_read += 4096;
    }
  });
  harness.Run();
  EXPECT_EQ(total_read, 32u * 1024);
}

TEST(CoopHarnessTest, PipelineOfThreeStages) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId stage1 = SpawnStd(kernel, "s1");
  const TaskId stage2 = SpawnStd(kernel, "s2");
  const TaskId stage3 = SpawnStd(kernel, "s3");
  const uint32_t p12 = kernel.CreatePipe();
  const uint32_t p23 = kernel.CreatePipe();
  constexpr uint32_t kChunks = 24;

  CoopHarness harness(kernel);
  harness.AddTask(stage1, [&] {
    kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
    for (uint32_t i = 0; i < kChunks; ++i) {
      kernel.PipeWriteBlocking(p12, EffAddr(kUserDataBase), 2048);
    }
  });
  harness.AddTask(stage2, [&] {
    for (uint32_t i = 0; i < kChunks; ++i) {
      kernel.PipeReadBlocking(p12, EffAddr(kUserDataBase), 2048);
      kernel.UserExecute(64);  // "transform"
      kernel.PipeWriteBlocking(p23, EffAddr(kUserDataBase), 2048);
    }
  });
  uint32_t received = 0;
  harness.AddTask(stage3, [&] {
    for (uint32_t i = 0; i < kChunks; ++i) {
      kernel.PipeReadBlocking(p23, EffAddr(kUserDataBase + 0x2000), 2048);
      ++received;
    }
  });
  harness.Run();
  EXPECT_EQ(received, kChunks);
}

TEST(CoopHarnessTest, StuckConsumerIsReportedNotHung) {
  // The producer finishes but the consumer wants more data than was ever written: the
  // harness must surface the stall instead of hanging.
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId producer = SpawnStd(kernel, "p");
  const TaskId consumer = SpawnStd(kernel, "c");
  const uint32_t pipe = kernel.CreatePipe();

  CoopHarness harness(kernel);
  harness.AddTask(producer, [&] {
    kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
    kernel.PipeWriteBlocking(pipe, EffAddr(kUserDataBase), 512);
  });
  harness.AddTask(consumer, [&] {
    kernel.PipeReadBlocking(pipe, EffAddr(kUserDataBase + 0x2000), 4096);  // never satisfied
  });
  // Surfaces as the kernel's deadlock check (the consumer blocks with nothing runnable).
  EXPECT_THROW(harness.Run(), std::logic_error);
}

TEST(CoopHarnessTest, BodiesInterleaveDeterministically) {
  // Two identical runs produce identical simulated cycle counts.
  auto run_once = [] {
    System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
    Kernel& kernel = sys.kernel();
    const TaskId a = SpawnStd(kernel, "a");
    const TaskId b = SpawnStd(kernel, "b");
    const uint32_t pipe = kernel.CreatePipe();
    CoopHarness harness(kernel);
    harness.AddTask(a, [&] {
      kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
      for (int i = 0; i < 10; ++i) {
        kernel.PipeWriteBlocking(pipe, EffAddr(kUserDataBase), 4096);
      }
    });
    harness.AddTask(b, [&] {
      for (int i = 0; i < 10; ++i) {
        kernel.PipeReadBlocking(pipe, EffAddr(kUserDataBase + 0x4000), 4096);
      }
    });
    harness.Run();
    return sys.counters().cycles;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ppcmm
