// Model-based property tests: drive the hardware models with random operation streams and
// check them against the trivially-correct reference implementations the differential
// fuzzer also uses (src/verify/fuzz/reference_*.h):
//
//   Cache   vs ReferenceCache   — a map of (set -> LRU list) built with std::list
//   Tlb     vs ReferenceTlb     — a map keyed by (vsid, page index), same set/LRU discipline
//   VmaList vs ReferenceVmaModel — a std::map of page -> attributes
//
// These catch exactly the bookkeeping bugs unit tests miss: stale LRU stamps, wrong set
// indexing, split/trim edge cases.

#include <gtest/gtest.h>

#include "src/kernel/vma.h"
#include "src/mmu/tlb.h"
#include "src/sim/cache.h"
#include "src/sim/rng.h"
#include "src/verify/fuzz/reference_cache.h"
#include "src/verify/fuzz/reference_tlb.h"
#include "src/verify/fuzz/reference_vma.h"

namespace ppcmm {
namespace {

// ---- Cache vs reference ----

class CacheModelSweep : public ::testing::TestWithParam<CacheGeometry> {};

TEST_P(CacheModelSweep, MatchesReferenceLruModel) {
  const CacheGeometry geometry = GetParam();
  const MemoryTiming timing{.line_fill_cycles = 30, .single_beat_cycles = 12,
                            .writeback_cycles = 10};
  Cache cache("model", geometry, timing);
  ReferenceCache reference(geometry);
  Rng rng(2024);
  uint64_t hits = 0;
  for (int i = 0; i < 30000; ++i) {
    // A mix of hot lines and cold sweeps.
    const uint32_t addr =
        rng.Chance(2, 3) ? static_cast<uint32_t>(rng.NextBelow(64)) * geometry.line_bytes
                         : static_cast<uint32_t>(rng.NextBelow(1 << 22));
    const PhysAddr pa(addr);
    const bool model_hit = cache.AccessLine(pa, rng.Chance(1, 2)).hit;
    const bool reference_hit = reference.Access(pa);
    ASSERT_EQ(model_hit, reference_hit) << "divergence at access " << i << ", pa=0x"
                                        << std::hex << addr;
    hits += model_hit ? 1 : 0;
    if (i % 977 == 0) {
      ASSERT_EQ(cache.Contains(pa), reference.Contains(pa));
    }
  }
  EXPECT_GT(hits, 0u);
  EXPECT_EQ(cache.stats().hits, hits);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheModelSweep,
    ::testing::Values(
        CacheGeometry{.size_bytes = 8 * 1024, .line_bytes = 32, .associativity = 2},
        CacheGeometry{.size_bytes = 16 * 1024, .line_bytes = 32, .associativity = 4},
        CacheGeometry{.size_bytes = 4 * 1024, .line_bytes = 64, .associativity = 1}));

// ---- TLB vs reference ----

TEST(TlbModelTest, MatchesReferenceUnderRandomTraffic) {
  Tlb tlb("model", 64, 2);
  ReferenceTlb reference(64, 2);
  Rng rng(7);
  for (int i = 0; i < 30000; ++i) {
    const uint32_t vsid = static_cast<uint32_t>(rng.NextBelow(8));
    const uint32_t page = static_cast<uint32_t>(rng.NextBelow(256));
    switch (rng.NextBelow(3)) {
      case 0: {
        const bool model = tlb.Lookup(VirtPage{Vsid(vsid), page}).has_value();
        const bool ref = reference.Lookup(vsid, page);
        ASSERT_EQ(model, ref) << "lookup divergence at step " << i;
        break;
      }
      case 1:
        tlb.Insert(TlbEntry{.valid = true,
                            .vsid = Vsid(vsid),
                            .page_index = page,
                            .frame = 1,
                            .cache_inhibited = false,
                            .writable = true,
                            .changed = false,
                            .is_kernel = false,
                            .last_used = 0});
        reference.Insert(vsid, page);
        break;
      case 2:
        tlb.InvalidatePage(page);
        reference.InvalidatePage(page);
        break;
    }
  }
}

// ---- VmaList vs reference ----

TEST(VmaModelTest, MatchesPageMapUnderRandomInsertRemove) {
  VmaList vmas;
  ReferenceVmaModel reference;
  Rng rng(99);
  for (int i = 0; i < 4000; ++i) {
    const uint32_t start = static_cast<uint32_t>(rng.NextBelow(512));
    const uint32_t count = 1 + static_cast<uint32_t>(rng.NextBelow(24));
    if (rng.Chance(1, 2)) {
      // Insert only when the model says the range is free; verify it agrees.
      const bool free = reference.RangeIsFree(start, count);
      ASSERT_EQ(vmas.RangeIsFree(start, count), free) << "RangeIsFree divergence";
      if (free) {
        vmas.Insert(Vma{.start_page = start, .end_page = start + count, .writable = true,
                        .backing = VmaBacking::kAnonymous});
        reference.Insert(start, count, RefVmaAttr{.writable = true});
      }
    } else {
      const uint32_t removed_reference = reference.Remove(start, count);
      const uint32_t removed_model = vmas.Remove(start, count);
      ASSERT_EQ(removed_model, removed_reference) << "Remove divergence at step " << i;
    }
    if (i % 251 == 0) {
      // Spot-check membership and totals.
      for (uint32_t p = 0; p < 560; p += 7) {
        ASSERT_EQ(vmas.Find(p).has_value(), reference.Find(p).has_value()) << "page " << p;
      }
      ASSERT_EQ(vmas.TotalPages(), reference.TotalPages());
    }
  }
}

}  // namespace
}  // namespace ppcmm
