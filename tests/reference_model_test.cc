// Model-based property tests: drive the hardware models with random operation streams and
// check them against trivially-correct reference implementations.
//
//   Cache  vs a map of (set -> LRU list) built with std::list
//   Tlb    vs a map keyed by (vsid, page index) with the same set/LRU discipline
//   VmaList vs a std::map of page -> mapped?
//
// These catch exactly the bookkeeping bugs unit tests miss: stale LRU stamps, wrong set
// indexing, split/trim edge cases.

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <set>

#include "src/kernel/vma.h"
#include "src/mmu/tlb.h"
#include "src/sim/cache.h"
#include "src/sim/rng.h"

namespace ppcmm {
namespace {

// ---- Cache vs reference ----

class ReferenceCache {
 public:
  explicit ReferenceCache(const CacheGeometry& geometry) : geometry_(geometry) {}

  // Returns true on hit; mirrors LRU with invalid-way preference via eviction on overflow.
  bool Access(PhysAddr pa) {
    const uint64_t line = pa.value / geometry_.line_bytes;
    const uint32_t set = line & (geometry_.NumSets() - 1);
    std::list<uint64_t>& lru = sets_[set];
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (*it == line) {
        lru.erase(it);
        lru.push_back(line);  // most recent at the back
        return true;
      }
    }
    lru.push_back(line);
    if (lru.size() > geometry_.associativity) {
      lru.pop_front();
    }
    return false;
  }

  bool Contains(PhysAddr pa) const {
    const uint64_t line = pa.value / geometry_.line_bytes;
    const uint32_t set = line & (geometry_.NumSets() - 1);
    auto it = sets_.find(set);
    if (it == sets_.end()) {
      return false;
    }
    for (const uint64_t resident : it->second) {
      if (resident == line) {
        return true;
      }
    }
    return false;
  }

 private:
  CacheGeometry geometry_;
  std::map<uint32_t, std::list<uint64_t>> sets_;
};

class CacheModelSweep : public ::testing::TestWithParam<CacheGeometry> {};

TEST_P(CacheModelSweep, MatchesReferenceLruModel) {
  const CacheGeometry geometry = GetParam();
  const MemoryTiming timing{.line_fill_cycles = 30, .single_beat_cycles = 12,
                            .writeback_cycles = 10};
  Cache cache("model", geometry, timing);
  ReferenceCache reference(geometry);
  Rng rng(2024);
  uint64_t hits = 0;
  for (int i = 0; i < 30000; ++i) {
    // A mix of hot lines and cold sweeps.
    const uint32_t addr =
        rng.Chance(2, 3) ? static_cast<uint32_t>(rng.NextBelow(64)) * geometry.line_bytes
                         : static_cast<uint32_t>(rng.NextBelow(1 << 22));
    const PhysAddr pa(addr);
    const bool model_hit = cache.AccessLine(pa, rng.Chance(1, 2)).hit;
    const bool reference_hit = reference.Access(pa);
    ASSERT_EQ(model_hit, reference_hit) << "divergence at access " << i << ", pa=0x"
                                        << std::hex << addr;
    hits += model_hit ? 1 : 0;
    if (i % 977 == 0) {
      ASSERT_EQ(cache.Contains(pa), reference.Contains(pa));
    }
  }
  EXPECT_GT(hits, 0u);
  EXPECT_EQ(cache.stats().hits, hits);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheModelSweep,
    ::testing::Values(
        CacheGeometry{.size_bytes = 8 * 1024, .line_bytes = 32, .associativity = 2},
        CacheGeometry{.size_bytes = 16 * 1024, .line_bytes = 32, .associativity = 4},
        CacheGeometry{.size_bytes = 4 * 1024, .line_bytes = 64, .associativity = 1}));

// ---- TLB vs reference ----

struct ReferenceTlb {
  explicit ReferenceTlb(uint32_t entries, uint32_t ways)
      : num_sets(entries / ways), associativity(ways) {}

  struct Key {
    uint32_t vsid;
    uint32_t page_index;
    bool operator==(const Key& o) const {
      return vsid == o.vsid && page_index == o.page_index;
    }
  };

  bool Lookup(uint32_t vsid, uint32_t page_index) {
    std::list<Key>& lru = sets[page_index & (num_sets - 1)];
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (*it == Key{vsid, page_index}) {
        Key k = *it;
        lru.erase(it);
        lru.push_back(k);
        return true;
      }
    }
    return false;
  }

  void Insert(uint32_t vsid, uint32_t page_index) {
    std::list<Key>& lru = sets[page_index & (num_sets - 1)];
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (*it == Key{vsid, page_index}) {
        lru.erase(it);
        break;
      }
    }
    lru.push_back(Key{vsid, page_index});
    if (lru.size() > associativity) {
      lru.pop_front();
    }
  }

  void InvalidatePage(uint32_t page_index) {
    std::list<Key>& lru = sets[page_index & (num_sets - 1)];
    lru.remove_if([page_index](const Key& k) { return k.page_index == page_index; });
  }

  uint32_t num_sets;
  uint32_t associativity;
  std::map<uint32_t, std::list<Key>> sets;
};

TEST(TlbModelTest, MatchesReferenceUnderRandomTraffic) {
  Tlb tlb("model", 64, 2);
  ReferenceTlb reference(64, 2);
  Rng rng(7);
  for (int i = 0; i < 30000; ++i) {
    const uint32_t vsid = static_cast<uint32_t>(rng.NextBelow(8));
    const uint32_t page = static_cast<uint32_t>(rng.NextBelow(256));
    switch (rng.NextBelow(3)) {
      case 0: {
        const bool model = tlb.Lookup(VirtPage{Vsid(vsid), page}).has_value();
        const bool ref = reference.Lookup(vsid, page);
        ASSERT_EQ(model, ref) << "lookup divergence at step " << i;
        break;
      }
      case 1:
        tlb.Insert(TlbEntry{.valid = true,
                            .vsid = Vsid(vsid),
                            .page_index = page,
                            .frame = 1,
                            .cache_inhibited = false,
                            .writable = true,
                            .changed = false,
                            .is_kernel = false,
                            .last_used = 0});
        reference.Insert(vsid, page);
        break;
      case 2:
        tlb.InvalidatePage(page);
        reference.InvalidatePage(page);
        break;
    }
  }
}

// ---- VmaList vs reference ----

TEST(VmaModelTest, MatchesPageMapUnderRandomInsertRemove) {
  VmaList vmas;
  std::set<uint32_t> mapped;  // reference: the set of mapped pages
  Rng rng(99);
  for (int i = 0; i < 4000; ++i) {
    const uint32_t start = static_cast<uint32_t>(rng.NextBelow(512));
    const uint32_t count = 1 + static_cast<uint32_t>(rng.NextBelow(24));
    if (rng.Chance(1, 2)) {
      // Insert only when the model says the range is free; verify it agrees.
      bool free = true;
      for (uint32_t p = start; p < start + count; ++p) {
        free = free && !mapped.contains(p);
      }
      ASSERT_EQ(vmas.RangeIsFree(start, count), free) << "RangeIsFree divergence";
      if (free) {
        vmas.Insert(Vma{.start_page = start, .end_page = start + count, .writable = true,
                        .backing = VmaBacking::kAnonymous});
        for (uint32_t p = start; p < start + count; ++p) {
          mapped.insert(p);
        }
      }
    } else {
      uint32_t removed_reference = 0;
      for (uint32_t p = start; p < start + count; ++p) {
        removed_reference += mapped.erase(p);
      }
      const uint32_t removed_model = vmas.Remove(start, count);
      ASSERT_EQ(removed_model, removed_reference) << "Remove divergence at step " << i;
    }
    if (i % 251 == 0) {
      // Spot-check membership and totals.
      for (uint32_t p = 0; p < 560; p += 7) {
        ASSERT_EQ(vmas.Find(p).has_value(), mapped.contains(p)) << "page " << p;
      }
      ASSERT_EQ(vmas.TotalPages(), mapped.size());
    }
  }
}

}  // namespace
}  // namespace ppcmm
