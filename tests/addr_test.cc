// Address-type tests: the Figure 1 bit-slicing of effective and physical addresses.

#include <gtest/gtest.h>

#include "src/sim/addr.h"
#include "src/sim/phys_addr.h"

namespace ppcmm {
namespace {

TEST(EffAddrTest, SplitsFigureOneFields) {
  // 0xC0012345: segment 0xC, page index 0x0012, offset 0x345.
  const EffAddr ea(0xC0012345);
  EXPECT_EQ(ea.SegmentIndex(), 0xCu);
  EXPECT_EQ(ea.PageIndex(), 0x0012u);
  EXPECT_EQ(ea.PageOffset(), 0x345u);
  EXPECT_EQ(ea.EffPageNumber(), 0xC0012u);
}

TEST(EffAddrTest, PageIndexIsSixteenBits) {
  const EffAddr ea(0x0FFFF000);  // segment 0, highest page index
  EXPECT_EQ(ea.SegmentIndex(), 0u);
  EXPECT_EQ(ea.PageIndex(), 0xFFFFu);
}

TEST(EffAddrTest, KernelBoundary) {
  EXPECT_FALSE(EffAddr(0xBFFFFFFF).IsKernel());
  EXPECT_TRUE(EffAddr(0xC0000000).IsKernel());
  EXPECT_TRUE(EffAddr(0xFFFFFFFF).IsKernel());
  EXPECT_EQ(kFirstKernelSegment, 12u);
}

TEST(EffAddrTest, FromPageRoundTrips) {
  const EffAddr ea = EffAddr::FromPage(0x40123, 0x7C);
  EXPECT_EQ(ea.EffPageNumber(), 0x40123u);
  EXPECT_EQ(ea.PageOffset(), 0x7Cu);
  EXPECT_EQ(ea.SegmentIndex(), 4u);
}

TEST(EffAddrTest, AdditionCarriesIntoPage) {
  const EffAddr ea = EffAddr(0x00000FFC) + 8;
  EXPECT_EQ(ea.EffPageNumber(), 1u);
  EXPECT_EQ(ea.PageOffset(), 4u);
}

TEST(PhysAddrTest, FrameAndOffset) {
  const PhysAddr pa = PhysAddr::FromFrame(0x123, 0x45);
  EXPECT_EQ(pa.value, 0x123045u);
  EXPECT_EQ(pa.PageFrame(), 0x123u);
  EXPECT_EQ(pa.PageOffset(), 0x45u);
}

TEST(PhysAddrTest, FromFrameMasksOversizedOffset) {
  const PhysAddr pa = PhysAddr::FromFrame(1, 0x1234);  // offset wider than a page
  EXPECT_EQ(pa.PageOffset(), 0x234u);
  EXPECT_EQ(pa.PageFrame(), 1u);
}

TEST(VsidTest, TruncatesToTwentyFourBits) {
  EXPECT_EQ(Vsid(0x12345678).value, 0x345678u);
  EXPECT_EQ(Vsid(0xFFFFFF).value, 0xFFFFFFu);
}

TEST(VirtPageTest, OrderingAndEquality) {
  const VirtPage a{.vsid = Vsid(1), .page_index = 2};
  const VirtPage b{.vsid = Vsid(1), .page_index = 2};
  const VirtPage c{.vsid = Vsid(1), .page_index = 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(AccessKindTest, Predicates) {
  EXPECT_TRUE(IsWrite(AccessKind::kStore));
  EXPECT_FALSE(IsWrite(AccessKind::kLoad));
  EXPECT_FALSE(IsWrite(AccessKind::kInstructionFetch));
  EXPECT_TRUE(IsInstruction(AccessKind::kInstructionFetch));
  EXPECT_FALSE(IsInstruction(AccessKind::kStore));
}

}  // namespace
}  // namespace ppcmm
