// mmu-lint against its fixture corpus and the real tree.
//
// Every rule ID must fire on its fixture at the exact file:line the fixture stages, the
// suppression and scope escapes must stay quiet, the clean fixture must pass every rule,
// and the real tree must lint clean. The exact-match assertions are the point: removing a
// staged violation from a fixture (or a rule from the checker) turns this red.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "tools/mmu-lint/lint.h"

namespace {

struct Expected {
  std::string file;
  uint32_t line;
  std::string rule;
};

mmulint::LintResult RunFixture(const std::string& fixture, const std::string& rules) {
  mmulint::LintConfig config;
  config.root = std::string(PPCMM_LINT_FIXTURES) + "/" + fixture;
  if (!rules.empty()) {
    config.rule_prefixes.push_back(rules);
  }
  return mmulint::RunLint(config);
}

// Asserts result holds exactly `expected` (order-insensitively on the expectation side;
// diagnostics themselves arrive sorted by file/line/rule).
void ExpectExactly(const mmulint::LintResult& result, std::vector<Expected> expected) {
  for (const std::string& error : result.errors) {
    ADD_FAILURE() << "lint error: " << error;
  }
  std::sort(expected.begin(), expected.end(), [](const Expected& a, const Expected& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  ASSERT_EQ(result.diagnostics.size(), expected.size()) << [&] {
    std::string got;
    for (const auto& d : result.diagnostics) {
      got += "  " + d.file + ":" + std::to_string(d.line) + " [" + d.rule + "]\n";
    }
    return "diagnostics were:\n" + got;
  }();
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.diagnostics[i].file, expected[i].file) << "diagnostic " << i;
    EXPECT_EQ(result.diagnostics[i].line, expected[i].line) << "diagnostic " << i;
    EXPECT_EQ(result.diagnostics[i].rule, expected[i].rule) << "diagnostic " << i;
  }
}

TEST(MmuLintFixtures, LayeringRulesFireAtStagedLines) {
  // sched2.h stages the same upward include as sched.h under a mmu-lint-allow comment, so
  // its absence below is itself an assertion.
  ExpectExactly(RunFixture("layering", "LAYER"),
                {
                    {"src/kernel/sched.h", 2, "LAYER-DAG-001"},
                    {"src/mmu/tlb.h", 2, "LAYER-DAG-001"},
                    {"src/sim/trace2.h", 3, "LAYER-DAG-001"},
                    {"src/sim/trace2.h", 3, "LAYER-HOT-OBS-003"},
                    {"src/verify/fuzz/ref_util.h", 4, "LAYER-ORACLE-002"},
                });
}

TEST(MmuLintFixtures, OracleViolationNamesTheIncludeChain) {
  const mmulint::LintResult result = RunFixture("layering", "LAYER-ORACLE");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  // The contamination is two hops from the root; the diagnostic must show the path.
  EXPECT_NE(result.diagnostics[0].message.find(
                "src/verify/fuzz/reference_tlb.h -> src/verify/fuzz/ref_util.h"),
            std::string::npos)
      << result.diagnostics[0].message;
}

TEST(MmuLintFixtures, DeterminismRulesFireAtStagedLines) {
  // rng.h (allowlisted), the suppressed srand, and the rand() in tests/ must all stay
  // quiet; the cross-file unordered iteration (declared in table.h, walked in table.cc)
  // must not.
  ExpectExactly(RunFixture("determinism", "DET"),
                {
                    {"src/kernel/table.cc", 4, "DET-ITER-012"},
                    {"src/kernel/table.cc", 10, "DET-ITER-012"},
                    {"src/sim/clocks.cc", 5, "DET-TIME-011"},
                    {"src/sim/clocks.cc", 6, "DET-RAND-010"},
                });
}

TEST(MmuLintFixtures, HotPathRulesFireAtStagedLines) {
  // hash_table.cc's Grow() uses `new` outside any registered hot function and must stay
  // quiet; the missing Tlb::TouchLru must be reported so the rule table cannot rot.
  ExpectExactly(RunFixture("hotpath", "HOT"),
                {
                    {"src/mmu/bat.h", 5, "HOT-ATTR-026"},
                    {"src/mmu/bat.h", 7, "HOT-ATTR-026"},
                    {"src/mmu/mmu.cc", 7, "HOT-THROW-021"},
                    {"src/mmu/mmu.cc", 12, "HOT-LOCK-022"},
                    {"src/mmu/mmu.cc", 18, "HOT-IO-023"},
                    {"src/mmu/mmu.cc", 21, "HOT-ALLOC-020"},
                    {"src/mmu/tlb.h", 1, "HOT-MISSING-025"},
                    {"src/mmu/tlb.h", 5, "HOT-VIRT-024"},
                    {"src/sim/cache.h", 5, "HOT-ALLOC-020"},
                });
}

TEST(MmuLintFixtures, SpanValidityRulesFireAtStagedLines) {
  // AccessRun in the hotpath fixture stages both forbidden span-validity inputs: pointer
  // identity (reinterpret_cast) and wall-clock time (clock_gettime). The clean FastGen in
  // mmu.h and the registered-but-clean run bodies must stay quiet.
  ExpectExactly(RunFixture("hotpath", "SPAN"),
                {
                    {"src/mmu/mmu.cc", 23, "SPAN-GEN-027"},
                    {"src/mmu/mmu.cc", 25, "SPAN-GEN-027"},
                });
}

TEST(MmuLintFixtures, SmpIpiRuleFiresAtStagedLines) {
  // vma.cc stages both direct cross-CPU invalidation primitives outside the flush engine.
  // The allowlisted definition (mmu.h) and IPI path (flush.cc), the suppressed call in
  // vma2.cc, and the out-of-scope probe under tests/ must all stay quiet.
  ExpectExactly(RunFixture("smp", "SMP"),
                {
                    {"src/kernel/vma.cc", 6, "SMP-IPI-028"},
                    {"src/kernel/vma.cc", 8, "SMP-IPI-028"},
                });
}

TEST(MmuLintFixtures, FlushContractFiresAtStagedLines) {
  // ZapFlushed (same-body tlbie), ZapVia (flush one call-graph hop down) and ZapDeferred
  // (annotated with a reason) must all stay quiet; the bare insert, the reason-less
  // marker, and the self-flushing SegmentRegs::Set without a generation_ bump must not.
  ExpectExactly(RunFixture("flushcontract", "FLUSH"),
                {
                    {"src/mmu/segment_regs.cc", 3, "FLUSH-CONTRACT-029"},
                    {"src/mmu/zapper.cc", 7, "FLUSH-CONTRACT-029"},
                    {"src/mmu/zapper.cc", 35, "FLUSH-CONTRACT-029"},
                    {"src/mmu/zapper.cc", 36, "FLUSH-CONTRACT-029"},
                });
}

TEST(MmuLintFixtures, FlushContractSuggestsNearestPrimitive) {
  // The fix line is part of the contract: it must name the concrete flush primitive for
  // the mutated structure, not a generic "add a flush".
  const mmulint::LintResult result = RunFixture("flushcontract", "FLUSH");
  bool found = false;
  for (const auto& d : result.diagnostics) {
    if (d.file == "src/mmu/zapper.cc" && d.line == 7) {
      found = true;
      EXPECT_EQ(d.fix,
                "invalidate the displaced translation via Mmu::TlbInvalidatePage (tlbie) "
                "or route the update through FlushEngine (src/kernel/flush.cc)");
    }
  }
  EXPECT_TRUE(found) << "staged ZapOne violation missing";
}

TEST(MmuLintFixtures, HotClosureFiresWithWitnessPath) {
  // Grow is registered nowhere but reachable from the hot root Tlb::LookupPtr, so its
  // allocation fires; DebugDump allocates too but is unreachable and must stay quiet.
  const mmulint::LintResult result = RunFixture("hotclosure", "HOT-CLOSURE");
  ExpectExactly(result, {{"src/mmu/tlb.h", 14, "HOT-CLOSURE-030"}});
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_NE(result.diagnostics[0].message.find("Tlb::LookupPtr -> Tlb::Grow"),
            std::string::npos)
      << result.diagnostics[0].message;
}

TEST(MmuLintFixtures, SmpConfineFiresAtStagedLines) {
  // The argless itlb() spotlight view and the registered ShootdownRound gateway must stay
  // quiet; the remote charge and the per-CPU accessor outside a gateway must not.
  ExpectExactly(RunFixture("smpconfine", "SMP-CONFINE"),
                {
                    {"src/kernel/flush2.cc", 7, "SMP-CONFINE-031"},
                    {"src/kernel/flush2.cc", 12, "SMP-CONFINE-031"},
                });
}

TEST(MmuLintFixtures, AttrCoverFiresAtStagedLines) {
  // Mmap (scope before charge and call), ChargeBody (only entered scoped) and UserExecute
  // (ambient with a reason) must stay quiet; the unscoped entry point, the transitively
  // unscoped helper, and the reason-less ambient marker must not.
  const mmulint::LintResult result = RunFixture("attrcover", "ATTR");
  ExpectExactly(result,
                {
                    {"src/kernel/syscalls.cc", 8, "ATTR-COVER-032"},
                    {"src/kernel/syscalls.cc", 30, "ATTR-COVER-032"},
                    {"src/kernel/syscalls.cc", 41, "ATTR-COVER-032"},
                });
  // The transitive finding must name the entry point the unattributed path starts at.
  for (const auto& d : result.diagnostics) {
    if (d.line == 30) {
      EXPECT_NE(d.message.find("unattributed path from Kernel::Yield"), std::string::npos)
          << d.message;
    }
  }
}

TEST(MmuLintCallGraph, FixtureGraphHasExpectedShapes) {
  mmulint::LintConfig config;
  config.root = std::string(PPCMM_LINT_FIXTURES) + "/callgraph";
  std::vector<std::string> errors;
  const std::string json = mmulint::DumpCallGraph(config, "json", &errors);
  for (const std::string& error : errors) {
    ADD_FAILURE() << "dump error: " << error;
  }
  const auto has = [&](const std::string& needle) {
    EXPECT_NE(json.find(needle), std::string::npos) << "missing: " << needle << "\n" << json;
  };
  // Overloads merge into one node with two defs…
  has("\"id\": \"Widget::Spin\",\n      \"class\": \"Widget\",\n      \"name\": \"Spin\",\n"
      "      \"defs\": 2");
  // …and the zero-arg overload's call to its sibling lands on the merged node.
  has("{\"callee\": \"Widget::Spin\", \"line\": 14, \"kind\": \"same-class\"}");
  // Receiver type inferred from a `Widget&` parameter, not the member table.
  has("{\"callee\": \"Widget::Spin\", \"line\": 37, \"kind\": \"member\"}");
  // Direct recursion is a self-edge.
  has("{\"callee\": \"Widget::Unwind\", \"line\": 32, \"kind\": \"same-class\"}");
  // A two-function cycle survives, resolved by unique global name.
  has("{\"callee\": \"PongStage\", \"line\": 43, \"kind\": \"unique\"}");
  has("{\"callee\": \"PingStage\", \"line\": 49, \"kind\": \"unique\"}");

  // The DOT form renders the same graph for the CI artifact; spot-check an edge.
  const std::string dot = mmulint::DumpCallGraph(config, "dot", &errors);
  EXPECT_NE(dot.find("\"PingStage\" -> \"PongStage\""), std::string::npos) << dot;

  // Unknown formats are an error, not silent empty output.
  std::vector<std::string> bad_errors;
  EXPECT_TRUE(mmulint::DumpCallGraph(config, "xml", &bad_errors).empty());
  EXPECT_EQ(bad_errors.size(), 1u);
}

TEST(MmuLintBaseline, AutoBaselineSuppressesAcceptedFindings) {
  // The fixture's tools/mmu-lint/baseline.txt accepts the staged unflushed write, so the
  // tree lints clean with no --baseline flag at all.
  ExpectExactly(RunFixture("baseline", "FLUSH"), {});
}

TEST(MmuLintBaseline, StaleAndMalformedEntriesAreErrors) {
  mmulint::LintConfig config;
  config.root = std::string(PPCMM_LINT_FIXTURES) + "/baseline";
  config.rule_prefixes.push_back("FLUSH");
  config.baseline_path = std::string(PPCMM_LINT_FIXTURES) + "/baseline/stale.txt";
  const mmulint::LintResult result = mmulint::RunLint(config);
  // The explicit baseline matches nothing, so the staged finding comes back…
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].file, "src/mmu/writer.cc");
  EXPECT_EQ(result.diagnostics[0].rule, "FLUSH-CONTRACT-029");
  // …and both the stale entry and the malformed one are hard errors.
  ASSERT_EQ(result.errors.size(), 2u);
  EXPECT_NE(result.errors[0].find("malformed baseline entry"), std::string::npos)
      << result.errors[0];
  EXPECT_NE(result.errors[1].find("stale baseline entry"), std::string::npos)
      << result.errors[1];
}

TEST(MmuLintFixtures, CounterRulesFireAtStagedLines) {
  // The fixture's tiny X-macro list is the source of truth, so the real tree's
  // hw.htab_hits must be flagged here; the markdown suppression must hold.
  ExpectExactly(RunFixture("counters", "CNT"),
                {
                    {"EXPERIMENTS.md", 3, "CNT-REF-030"},
                    {"src/obs/metrics.cc", 1, "CNT-FOREACH-031"},
                    {"src/obs/metrics.cc", 1, "CNT-SYS-034"},
                    {"tests/report_test.cc", 4, "CNT-REF-030"},
                    {"tests/report_test.cc", 6, "CNT-LAT-032"},
                    {"tests/report_test.cc", 8, "CNT-SYS-034"},
                });
}

TEST(MmuLintFixtures, EmptyXMacroListIsItselfAViolation) {
  ExpectExactly(RunFixture("xmacro", "CNT"), {{"src/sim/hw_counters.h", 1, "CNT-XMACRO-033"}});
}

TEST(MmuLintFixtures, CleanFixturePassesEveryRule) {
  const mmulint::LintResult result = RunFixture("clean", "");
  ExpectExactly(result, {});
  EXPECT_GE(result.files_scanned, 20u);
}

TEST(MmuLintFixtures, RuleFilterLimitsWhatFires) {
  // Same hotpath fixture, but only the allocation rule enabled.
  ExpectExactly(RunFixture("hotpath", "HOT-ALLOC"),
                {
                    {"src/mmu/mmu.cc", 21, "HOT-ALLOC-020"},
                    {"src/sim/cache.h", 5, "HOT-ALLOC-020"},
                });
}

TEST(MmuLintFixtures, EveryListedRuleIsExercisedByAFixture) {
  // The rule registry and the fixture corpus must not drift apart: every rule mmu-lint
  // advertises fires in at least one fixture above (rules are also each asserted at exact
  // lines; this test catches a NEW rule added without fixture coverage).
  std::set<std::string> fired;
  for (const char* fixture : {"layering", "determinism", "hotpath", "smp", "counters",
                              "xmacro", "flushcontract", "hotclosure", "smpconfine",
                              "attrcover"}) {
    for (const auto& d : RunFixture(fixture, "").diagnostics) {
      fired.insert(d.rule);
    }
  }
  for (const auto& [id, description] : mmulint::ListRules()) {
    EXPECT_TRUE(fired.count(id) != 0) << "rule " << id << " (" << description
                                      << ") fires in no fixture";
  }
}

TEST(MmuLintRealTree, LintsClean) {
  mmulint::LintConfig config;
  config.root = PPCMM_LINT_REPO_ROOT;
  const mmulint::LintResult result = mmulint::RunLint(config);
  for (const std::string& error : result.errors) {
    ADD_FAILURE() << "lint error: " << error;
  }
  for (const auto& d : result.diagnostics) {
    ADD_FAILURE() << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message;
  }
  // A shrunken scan (wrong root, broken walk) must not pass as "clean".
  EXPECT_GE(result.files_scanned, 100u);
}

}  // namespace
