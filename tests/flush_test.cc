// Flush strategy tests (§7): eager per-page HTAB searches vs. lazy VSID retirement, the
// range cutoff, zombie creation, and the correctness property that no stale translation is
// ever reachable after a flush.

#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/kernel/layout.h"

namespace ppcmm {
namespace {

TaskId SpawnStd(Kernel& kernel, const char* name) {
  const TaskId id = kernel.CreateTask(name);
  kernel.Exec(id, ExecImage{.text_pages = 8, .data_pages = 32, .stack_pages = 4});
  kernel.SwitchTo(id);
  return id;
}

// Maps and touches `pages` pages at a fixed mmap address, returning the start page.
uint32_t MapAndTouch(Kernel& kernel, uint32_t pages) {
  const uint32_t start = kernel.Mmap(pages);
  for (uint32_t i = 0; i < pages; ++i) {
    kernel.UserTouch(EffAddr::FromPage(start + i), AccessKind::kStore);
  }
  return start;
}

TEST(FlushTest, EagerMunmapSearchesHtabPerPage) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel, "t");
  const uint32_t start = MapAndTouch(kernel, 40);
  const HwCounters before = sys.counters();
  kernel.Munmap(start, 40);
  const HwCounters delta = sys.counters().Diff(before);
  // Every page pays the HTAB search: at least a probe plus the invalidating store when the
  // entry sits early in its PTEG, up to 17 references when it doesn't.
  EXPECT_GE(delta.htab_flush_memory_refs, 40u * 2u);
  EXPECT_LE(delta.htab_flush_memory_refs, 40u * 17u);
  EXPECT_EQ(delta.tlb_context_flushes, 0u);
  EXPECT_EQ(delta.tlb_page_flushes, 40u);
}

TEST(FlushTest, LazyMunmapAboveCutoffRetiresContext) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::OnlyLazyFlush(20));
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel, "t");
  const uint32_t start = MapAndTouch(kernel, 40);
  const ContextId ctx_before = kernel.task(t).mm->context;
  const HwCounters before = sys.counters();
  kernel.Munmap(start, 40);
  const HwCounters delta = sys.counters().Diff(before);
  EXPECT_EQ(delta.tlb_context_flushes, 1u);
  EXPECT_EQ(delta.tlb_page_flushes, 0u);
  EXPECT_EQ(delta.htab_flush_memory_refs, 0u);
  EXPECT_NE(kernel.task(t).mm->context, ctx_before);
  // The segment registers follow the new context immediately.
  EXPECT_EQ(sys.mmu().segments().Get(0),
            kernel.vsids().UserVsid(kernel.task(t).mm->context, 0));
}

TEST(FlushTest, LazyMunmapBelowCutoffStaysEager) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::OnlyLazyFlush(20));
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel, "t");
  const uint32_t start = MapAndTouch(kernel, 10);
  const ContextId ctx_before = kernel.task(t).mm->context;
  const HwCounters before = sys.counters();
  kernel.Munmap(start, 10);
  const HwCounters delta = sys.counters().Diff(before);
  EXPECT_EQ(delta.tlb_context_flushes, 0u);
  EXPECT_EQ(delta.tlb_page_flushes, 10u);
  EXPECT_EQ(kernel.task(t).mm->context, ctx_before);
}

TEST(FlushTest, LazyFlushLeavesZombiesInHtab) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::OnlyLazyFlush(20));
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel, "t");
  const uint32_t start = MapAndTouch(kernel, 40);
  const uint32_t valid_before = sys.mmu().htab().ValidCount();
  kernel.Munmap(start, 40);
  // Valid bits are untouched — the entries are zombies now.
  EXPECT_EQ(sys.mmu().htab().ValidCount(), valid_before);
  EXPECT_LT(sys.mmu().htab().LiveCount(kernel.vsids()), valid_before);
}

TEST(FlushTest, EagerFlushPhysicallyInvalidates) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel, "t");
  const uint32_t start = MapAndTouch(kernel, 40);
  const uint32_t valid_before = sys.mmu().htab().ValidCount();
  kernel.Munmap(start, 40);
  EXPECT_LE(sys.mmu().htab().ValidCount(), valid_before - 40);
}

TEST(FlushTest, NoStaleTranslationAfterLazyFlush) {
  // The correctness core of §7: after a lazy whole-context flush, the old translations must
  // be unreachable even though they are still physically present in the TLB and HTAB.
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::OnlyLazyFlush(20));
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel, "t");
  const uint32_t start = MapAndTouch(kernel, 40);
  const EffAddr probe_ea = EffAddr::FromPage(start + 5);
  const uint32_t old_frame = kernel.task(t).mm->page_table->LookupQuiet(probe_ea)->frame;
  kernel.Munmap(start, 40);

  // Remap the same address range; touching it must produce a fresh fault and (possibly)
  // a different frame — never the zombie translation.
  kernel.Mmap(40, MmapOptions{.fixed_page = start});
  const HwCounters before = sys.counters();
  kernel.UserTouch(probe_ea, AccessKind::kStore);
  EXPECT_EQ(sys.counters().Diff(before).page_faults, 1u);
  const uint32_t new_frame = kernel.task(t).mm->page_table->LookupQuiet(probe_ea)->frame;
  const auto pa = sys.mmu().Probe(probe_ea, AccessKind::kLoad);
  ASSERT_TRUE(pa.has_value());
  EXPECT_EQ(pa->PageFrame(), new_frame);
  (void)old_frame;
}

TEST(FlushTest, ExecFlushesWholeContext) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::OnlyLazyFlush(20));
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel, "t");
  MapAndTouch(kernel, 30);
  const ContextId ctx_before = kernel.task(t).mm->context;
  kernel.Exec(t, ExecImage{.text_pages = 8, .data_pages = 8, .stack_pages = 2});
  EXPECT_NE(kernel.task(t).mm->context, ctx_before);
  EXPECT_FALSE(kernel.vsids().IsLive(kernel.vsids().UserVsid(ctx_before, 0)));
}

TEST(FlushTest, CowFaultScrubsStaleReadOnlyEntry) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId parent = SpawnStd(kernel, "p");
  const EffAddr ea(kUserDataBase);
  kernel.UserTouch(ea, AccessKind::kStore);
  const TaskId child = kernel.Fork(parent);
  kernel.SwitchTo(child);
  kernel.UserTouch(ea, AccessKind::kLoad);   // caches the read-only translation
  kernel.UserTouch(ea, AccessKind::kStore);  // COW fault must scrub and remap
  // The write must land in the child's new frame through the MMU path.
  const uint32_t child_frame = kernel.task(child).mm->page_table->LookupQuiet(ea)->frame;
  const auto pa = sys.mmu().Probe(ea, AccessKind::kStore);
  ASSERT_TRUE(pa.has_value());
  EXPECT_EQ(pa->PageFrame(), child_frame);
  // And a repeated store no longer faults.
  const HwCounters before = sys.counters();
  kernel.UserTouch(ea, AccessKind::kStore);
  EXPECT_EQ(sys.counters().Diff(before).page_faults, 0u);
}

TEST(FlushTest, RangeFlushBlindlySearchesUnmappedPages) {
  // The unoptimized kernel searched the HTAB for every page in the range even if nothing
  // was mapped there (§7).
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel, "t");
  const uint32_t start = kernel.Mmap(50);  // mapped VMA, but never touched: no PTEs anywhere
  const HwCounters before = sys.counters();
  kernel.Munmap(start, 50);
  const HwCounters delta = sys.counters().Diff(before);
  EXPECT_GE(delta.htab_flush_memory_refs, 50u * 16u);
}

}  // namespace
}  // namespace ppcmm
