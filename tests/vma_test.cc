// VMA list tests: insertion, lookup, range removal with splitting, gap finding.

#include <gtest/gtest.h>

#include "src/kernel/vma.h"
#include "src/sim/check.h"

namespace ppcmm {
namespace {

Vma Anon(uint32_t start, uint32_t end, bool writable = true) {
  return Vma{.start_page = start, .end_page = end, .writable = writable,
             .backing = VmaBacking::kAnonymous};
}

TEST(VmaListTest, InsertAndFind) {
  VmaList vmas;
  vmas.Insert(Anon(100, 110));
  EXPECT_TRUE(vmas.Find(100).has_value());
  EXPECT_TRUE(vmas.Find(109).has_value());
  EXPECT_FALSE(vmas.Find(110).has_value());
  EXPECT_FALSE(vmas.Find(99).has_value());
  EXPECT_EQ(vmas.Count(), 1u);
  EXPECT_EQ(vmas.TotalPages(), 10u);
}

TEST(VmaListTest, OverlappingInsertThrows) {
  VmaList vmas;
  vmas.Insert(Anon(100, 110));
  EXPECT_THROW(vmas.Insert(Anon(105, 115)), CheckFailure);
  EXPECT_THROW(vmas.Insert(Anon(95, 101)), CheckFailure);
  EXPECT_THROW(vmas.Insert(Anon(100, 110)), CheckFailure);
  EXPECT_THROW(vmas.Insert(Anon(90, 120)), CheckFailure);
  EXPECT_NO_THROW(vmas.Insert(Anon(110, 120)));  // adjacent is fine
  EXPECT_NO_THROW(vmas.Insert(Anon(90, 100)));
  EXPECT_THROW(vmas.Insert(Anon(50, 50)), CheckFailure);  // empty
}

TEST(VmaListTest, RemoveWholeVma) {
  VmaList vmas;
  vmas.Insert(Anon(100, 110));
  EXPECT_EQ(vmas.Remove(100, 10), 10u);
  EXPECT_EQ(vmas.Count(), 0u);
}

TEST(VmaListTest, RemoveSplitsMiddle) {
  VmaList vmas;
  vmas.Insert(Anon(100, 120));
  EXPECT_EQ(vmas.Remove(105, 5), 5u);
  EXPECT_EQ(vmas.Count(), 2u);
  EXPECT_TRUE(vmas.Find(104).has_value());
  EXPECT_FALSE(vmas.Find(105).has_value());
  EXPECT_FALSE(vmas.Find(109).has_value());
  EXPECT_TRUE(vmas.Find(110).has_value());
  EXPECT_EQ(vmas.TotalPages(), 15u);
}

TEST(VmaListTest, RemoveTrimsEdges) {
  VmaList vmas;
  vmas.Insert(Anon(100, 120));
  EXPECT_EQ(vmas.Remove(95, 10), 5u);  // trims the left edge
  EXPECT_FALSE(vmas.Find(104).has_value());
  EXPECT_TRUE(vmas.Find(105).has_value());
  EXPECT_EQ(vmas.Remove(115, 10), 5u);  // trims the right edge
  EXPECT_TRUE(vmas.Find(114).has_value());
  EXPECT_FALSE(vmas.Find(115).has_value());
  EXPECT_EQ(vmas.TotalPages(), 10u);
}

TEST(VmaListTest, RemoveSpansMultipleVmas) {
  VmaList vmas;
  vmas.Insert(Anon(100, 110));
  vmas.Insert(Anon(120, 130));
  vmas.Insert(Anon(140, 150));
  EXPECT_EQ(vmas.Remove(105, 40), 5u + 10u + 5u);  // [105,145)
  EXPECT_EQ(vmas.Count(), 2u);
  EXPECT_TRUE(vmas.Find(100).has_value());
  EXPECT_FALSE(vmas.Find(125).has_value());
  EXPECT_TRUE(vmas.Find(145).has_value());
}

TEST(VmaListTest, FileBackedSplitAdjustsOffset) {
  VmaList vmas;
  vmas.Insert(Vma{.start_page = 100, .end_page = 120, .writable = false,
                  .backing = VmaBacking::kFile, .file_id = 7, .file_page_offset = 0});
  vmas.Remove(100, 5);
  const auto right = vmas.Find(105);
  ASSERT_TRUE(right.has_value());
  EXPECT_EQ(right->file_page_offset, 5u);
  EXPECT_EQ(right->file_id, 7u);
}

TEST(VmaListTest, RangeIsFree) {
  VmaList vmas;
  vmas.Insert(Anon(100, 110));
  EXPECT_TRUE(vmas.RangeIsFree(90, 10));
  EXPECT_TRUE(vmas.RangeIsFree(110, 10));
  EXPECT_FALSE(vmas.RangeIsFree(90, 11));
  EXPECT_FALSE(vmas.RangeIsFree(105, 1));
  EXPECT_FALSE(vmas.RangeIsFree(109, 5));
}

TEST(VmaListTest, FindFreeRangeSkipsMappedRegions) {
  VmaList vmas;
  vmas.Insert(Anon(100, 110));
  vmas.Insert(Anon(112, 120));
  EXPECT_EQ(vmas.FindFreeRange(100, 2), 110u);  // gap between the two
  EXPECT_EQ(vmas.FindFreeRange(100, 5), 120u);  // gap too small, goes past the second
  EXPECT_EQ(vmas.FindFreeRange(50, 10), 50u);   // hint itself is free
  EXPECT_EQ(vmas.FindFreeRange(105, 1), 110u);  // hint inside a VMA
}

TEST(VmaListTest, RemoveOutsideAnythingIsNoop) {
  VmaList vmas;
  vmas.Insert(Anon(100, 110));
  EXPECT_EQ(vmas.Remove(200, 50), 0u);
  EXPECT_EQ(vmas.Count(), 1u);
}

}  // namespace
}  // namespace ppcmm
