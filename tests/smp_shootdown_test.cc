// SMP TLB shootdown property tests.
//
// The paper's §7 lazy VSID-bump flush is usually pitched as a uniprocessor latency win; on
// SMP it is something stronger — a shootdown *eliminator*. These tests pin down both sides:
//
//   * eager flushes run real shootdown rounds: after a completed round no CPU's TLB holds
//     an invalidated translation, busy remote CPUs pay an IPI, and idle remote CPUs are
//     skipped (the cpu_idle_wait idiom) without ever losing coherence — their deferred
//     whole-TLB flush lands at the next switch-in;
//   * every cycle the attribution ledger books to kTlbShootdown is conserved against the
//     hardware counters: ipis * (send + receive + invalidate) + deferred * tlbia — no
//     shootdown work is double-charged or lost;
//   * the lazy VSID-bump path performs the same storm with *zero* shootdown rounds, because
//     retired VSIDs are unreachable on every CPU and remote zombie entries are harmless;
//   * a seeded shootdown storm is bit-deterministic: same seed, same ncpus => identical
//     global clock, per-CPU clocks, and shootdown counters.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/system.h"
#include "src/sim/rng.h"
#include "src/verify/coherence_auditor.h"

namespace ppcmm {
namespace {

MachineConfig SmpConfig(uint32_t ncpus) {
  MachineConfig config = MachineConfig::Ppc604(185);
  config.ncpus = ncpus;
  return config;
}

TaskId SpawnStd(Kernel& kernel, const char* name) {
  const TaskId id = kernel.CreateTask(name);
  kernel.Exec(id, ExecImage{.text_pages = 8, .data_pages = 32, .stack_pages = 4});
  kernel.SwitchTo(id);
  return id;
}

uint32_t MapAndTouch(Kernel& kernel, uint32_t pages) {
  const uint32_t start = kernel.Mmap(pages);
  for (uint32_t i = 0; i < pages; ++i) {
    kernel.UserTouch(EffAddr::FromPage(start + i), AccessKind::kStore);
  }
  return start;
}

// Counts TLB entries (both sides) on `cpu` translating pages [start, start+count) of the
// context owning `vsid`'s segment — the stale-window probe.
uint32_t EntriesFor(Mmu& mmu, uint32_t cpu, Vsid vsid, uint32_t start, uint32_t count) {
  uint32_t found = 0;
  const auto scan = [&](const TlbEntry& e) {
    for (uint32_t i = 0; i < count; ++i) {
      const EffAddr ea = EffAddr::FromPage(start + i);
      if (e.vsid == vsid && e.page_index == ea.PageIndex()) {
        ++found;
      }
    }
  };
  mmu.itlb(cpu).ForEachValid(scan);
  mmu.dtlb(cpu).ForEachValid(scan);
  return found;
}

// A task builds TLB state on CPU 0, is scheduled out (entries stay — they are VSID-tagged),
// migrates to CPU 1 and munmaps. The eager flush must shoot CPU 0's now-stale entries down
// through an IPI: after the round completes, no CPU holds the dead translation.
TEST(SmpShootdown, NoStaleEntryInAnyTlbAfterCompletedShootdown) {
  System sys(SmpConfig(2), OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  CoherenceAuditor auditor(kernel);

  const TaskId a = SpawnStd(kernel, "a");
  const uint32_t start = MapAndTouch(kernel, 4);
  const Vsid vsid =
      kernel.vsids().UserVsid(kernel.task(a).mm->context, EffAddr::FromPage(start).SegmentIndex());
  SpawnStd(kernel, "b");  // CPU 0 now runs b; a's entries linger in CPU 0's TLB
  ASSERT_GT(EntriesFor(sys.mmu(), 0, vsid, start, 4), 0u)
      << "test premise broken: scheduling b out of a left no stale window on CPU 0";

  kernel.SwitchCpu(1);
  kernel.SwitchTo(a);  // a migrates to CPU 1
  const HwCounters before = sys.counters();
  kernel.Munmap(start, 4);
  const HwCounters delta = sys.counters().Diff(before);

  EXPECT_GE(delta.tlb_shootdown_requests, 1u);
  EXPECT_GE(delta.tlb_shootdown_ipis, 1u) << "busy CPU 0 must take an IPI";
  EXPECT_EQ(delta.tlb_shootdown_idle_skips, 0u) << "no CPU was idle";
  for (uint32_t cpu = 0; cpu < kernel.ncpus(); ++cpu) {
    EXPECT_EQ(EntriesFor(sys.mmu(), cpu, vsid, start, 4), 0u)
        << "stale translation survived the shootdown on cpu " << cpu;
  }
  EXPECT_NO_THROW(auditor.Audit());
}

// An idle CPU holding stale-but-harmless TLB entries must be *skipped* by the shootdown
// round (no IPI — the cpu_idle_wait idiom), marked flush-pending, and the auditor must
// tolerate its whole TLB until the deferred tlbia lands at the next switch-in. Coherence
// is never lost: by the time any task runs there again, the TLB is empty.
//
// The window comes from the lazy config: b runs on CPU 1, then exits — the lazy path
// retires b's context without any flush, so CPU 1 sits idle with a TLB full of zombie
// entries. A small (below-cutoff) munmap by a on CPU 0 then runs an eager shootdown round
// that finds CPU 1 idle.
TEST(SmpShootdown, IdleCpusAreSkippedAndPayOneDeferredFlushAtSwitchIn) {
  System sys(SmpConfig(2), OptimizationConfig::OnlyLazyFlush(20));
  Kernel& kernel = sys.kernel();
  CoherenceAuditor auditor(kernel);

  SpawnStd(kernel, "a");
  kernel.SwitchCpu(1);
  const TaskId b = SpawnStd(kernel, "b");
  MapAndTouch(kernel, 4);  // b populates CPU 1's TLB
  kernel.SwitchCpu(0);
  kernel.Exit(b);  // lazy exit: no flush, CPU 1 idle, its TLB keeps b's zombie entries
  ASSERT_FALSE(kernel.FlushPendingOn(1));
  ASSERT_GT(sys.mmu().dtlb(1).ValidCount() + sys.mmu().itlb(1).ValidCount(), 0u)
      << "test premise broken: lazy exit should leave CPU 1's TLB populated";

  const uint32_t start = MapAndTouch(kernel, 4);
  const HwCounters before = sys.counters();
  kernel.Munmap(start, 4);  // below the cutoff: eager flush + shootdown round
  const HwCounters delta = sys.counters().Diff(before);
  EXPECT_GE(delta.tlb_shootdown_requests, 1u);
  EXPECT_GE(delta.tlb_shootdown_idle_skips, 1u) << "idle CPU 1 must be skipped, not IPI'd";
  EXPECT_EQ(delta.tlb_shootdown_ipis, 0u);
  EXPECT_TRUE(kernel.FlushPendingOn(1));
  EXPECT_FALSE(kernel.FlushPendingOn(0));

  // The auditor must tolerate CPU 1's logically-invalid TLB while the flush is pending.
  EXPECT_NO_THROW(auditor.Audit());
  EXPECT_GT(auditor.stats().tlb_stale_tolerated, 0u)
      << "CPU 1 held valid entries; the flush-pending exemption must have counted them";

  // The spotlight's return pays the one deferred whole-TLB flush, exactly once.
  const HwCounters before_switch = sys.counters();
  kernel.SwitchCpu(1);
  const HwCounters switch_delta = sys.counters().Diff(before_switch);
  EXPECT_EQ(switch_delta.tlb_shootdown_deferred_flushes, 1u);
  EXPECT_FALSE(kernel.FlushPendingOn(1));
  EXPECT_EQ(sys.mmu().itlb(1).ValidCount(), 0u);
  EXPECT_EQ(sys.mmu().dtlb(1).ValidCount(), 0u);
  kernel.SwitchCpu(1);  // a second hop owes nothing
  EXPECT_EQ(sys.counters().Diff(before_switch).tlb_shootdown_deferred_flushes, 1u);
  EXPECT_NO_THROW(auditor.Audit());
}

// Drives a seeded shootdown storm: three tasks pinned by the spotlight to CPUs 0-2 of a
// 4-CPU machine (CPU 3 stays idle all along), each round hopping to a random busy CPU and
// remapping a small working set, so every flush runs a round with both busy and idle
// remote CPUs. Returns the per-CPU local clocks at the end.
std::vector<uint64_t> RunShootdownStorm(System& sys, uint64_t seed, uint32_t rounds) {
  Kernel& kernel = sys.kernel();
  std::vector<TaskId> tasks;
  const uint32_t busy = kernel.ncpus() > 1 ? kernel.ncpus() - 1 : 1;
  for (uint32_t cpu = 0; cpu < busy; ++cpu) {
    kernel.SwitchCpu(cpu);
    tasks.push_back(SpawnStd(kernel, "storm"));
  }
  Rng rng(seed);
  for (uint32_t i = 0; i < rounds; ++i) {
    kernel.SwitchCpu(static_cast<uint32_t>(rng.NextBelow(busy)));
    const uint32_t pages = 2 + static_cast<uint32_t>(rng.NextBelow(3));
    const uint32_t start = kernel.Mmap(pages);
    for (uint32_t p = 0; p < pages; ++p) {
      kernel.UserTouch(EffAddr::FromPage(start + p), AccessKind::kStore);
    }
    kernel.Munmap(start, pages);
  }
  std::vector<uint64_t> clocks;
  for (uint32_t cpu = 0; cpu < kernel.ncpus(); ++cpu) {
    clocks.push_back(sys.machine().CpuCycles(cpu));
  }
  return clocks;
}

// Conservation: every cycle attributed to kTlbShootdown is explained by the counters —
// each IPI costs send + receive + invalidate on the two clocks involved, each deferred
// flush costs one tlbia — and nothing else ever runs under that cause.
TEST(SmpShootdown, AttributedCyclesMatchTheCountersExactly) {
  System sys(SmpConfig(4), OptimizationConfig::Baseline());
  sys.machine().attr().SetEnabled(true);
  RunShootdownStorm(sys, 0x57D0u, 60);

  const HwCounters& counters = sys.counters();
  ASSERT_GT(counters.tlb_shootdown_ipis, 0u);
  ASSERT_GT(counters.tlb_shootdown_idle_skips, 0u) << "CPU 3 must have been idle-skipped";

  uint64_t attributed = 0;
  for (const CycleLedger::Cell& cell : sys.machine().attr().Cells()) {
    for (const AttrCause cause : cell.path) {
      if (cause == AttrCause::kTlbShootdown) {
        attributed += cell.cycles;
        break;
      }
    }
  }
  const MachineConfig& config = sys.machine().config();
  const uint64_t per_ipi =
      config.ipi_send_cycles + config.ipi_receive_cycles + 32;  // send + receive + invalidate
  const uint64_t expected = counters.tlb_shootdown_ipis * per_ipi +
                            counters.tlb_shootdown_deferred_flushes * 32;
  EXPECT_EQ(attributed, expected)
      << "kTlbShootdown attribution does not reconcile with the shootdown counters: ipis="
      << counters.tlb_shootdown_ipis
      << " deferred=" << counters.tlb_shootdown_deferred_flushes;
}

// The same storm under lazy VSID-bump flushing: every munmap above the cutoff retires the
// context instead of flushing pages, so no shootdown round ever runs — the paper's trick
// does not just speed up the local flush, it deletes the cross-CPU traffic outright.
TEST(SmpShootdown, LazyVsidBumpRunsTheStormWithZeroShootdowns) {
  System sys(SmpConfig(4), OptimizationConfig::OnlyLazyFlush(1));
  Kernel& kernel = sys.kernel();
  CoherenceAuditor auditor(kernel);
  RunShootdownStorm(sys, 0x57D1u, 60);

  EXPECT_EQ(sys.counters().tlb_shootdown_requests, 0u);
  EXPECT_EQ(sys.counters().tlb_shootdown_ipis, 0u);
  EXPECT_GT(sys.counters().tlb_context_flushes, 0u) << "the storm must have taken lazy flushes";
  EXPECT_NO_THROW(auditor.Audit());
}

// On a uniprocessor the whole mechanism is inert: the storm runs, nothing shoots down.
TEST(SmpShootdown, UniprocessorStormNeverShootsDown) {
  System sys(SmpConfig(1), OptimizationConfig::Baseline());
  RunShootdownStorm(sys, 0x57D2u, 30);
  EXPECT_EQ(sys.counters().tlb_shootdown_requests, 0u);
  EXPECT_EQ(sys.counters().tlb_shootdown_ipis, 0u);
  EXPECT_EQ(sys.counters().tlb_shootdown_idle_skips, 0u);
  EXPECT_EQ(sys.counters().tlb_shootdown_deferred_flushes, 0u);
}

// Seed-replay determinism: the same seed and width reproduce the interleaving bit-exactly
// (global clock, every per-CPU clock, every shootdown counter); a different seed does not.
TEST(SmpShootdown, StormIsBitDeterministicPerSeed) {
  System run1(SmpConfig(4), OptimizationConfig::Baseline());
  const std::vector<uint64_t> clocks1 = RunShootdownStorm(run1, 0xD37u, 40);
  System run2(SmpConfig(4), OptimizationConfig::Baseline());
  const std::vector<uint64_t> clocks2 = RunShootdownStorm(run2, 0xD37u, 40);

  EXPECT_EQ(run1.counters().cycles, run2.counters().cycles);
  EXPECT_EQ(run1.counters().tlb_shootdown_requests, run2.counters().tlb_shootdown_requests);
  EXPECT_EQ(run1.counters().tlb_shootdown_ipis, run2.counters().tlb_shootdown_ipis);
  EXPECT_EQ(run1.counters().tlb_shootdown_idle_skips,
            run2.counters().tlb_shootdown_idle_skips);
  EXPECT_EQ(run1.counters().tlb_shootdown_deferred_flushes,
            run2.counters().tlb_shootdown_deferred_flushes);
  EXPECT_EQ(clocks1, clocks2);

  System run3(SmpConfig(4), OptimizationConfig::Baseline());
  const std::vector<uint64_t> clocks3 = RunShootdownStorm(run3, 0xD38u, 40);
  EXPECT_NE(clocks1, clocks3) << "different seeds should interleave differently";
}

}  // namespace
}  // namespace ppcmm
