// TLB tests: VSID-tagged lookup, set-associative replacement, tlbie semantics, and the
// kernel-entry accounting behind the §5.1 footprint measurements.

#include <gtest/gtest.h>

#include "src/mmu/tlb.h"
#include "src/sim/rng.h"

namespace ppcmm {
namespace {

TlbEntry MakeEntry(uint32_t vsid, uint32_t page_index, uint32_t frame = 0x100,
                   bool is_kernel = false) {
  return TlbEntry{.valid = true,
                  .vsid = Vsid(vsid),
                  .page_index = page_index,
                  .frame = frame,
                  .cache_inhibited = false,
                  .writable = true,
                  .is_kernel = is_kernel,
                  .last_used = 0};
}

TEST(TlbTest, InsertThenLookup) {
  Tlb tlb("d", 64, 2);
  tlb.Insert(MakeEntry(7, 0x42, 0x99));
  const auto hit = tlb.Lookup(VirtPage{.vsid = Vsid(7), .page_index = 0x42});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->frame, 0x99u);
}

TEST(TlbTest, VsidDisambiguatesIdenticalPageIndices) {
  // The core of lazy flushing: same page index under a retired VSID must not match.
  Tlb tlb("d", 64, 2);
  tlb.Insert(MakeEntry(7, 0x42, 0xAAA));
  tlb.Insert(MakeEntry(8, 0x42, 0xBBB));
  const auto hit7 = tlb.Lookup(VirtPage{.vsid = Vsid(7), .page_index = 0x42});
  const auto hit8 = tlb.Lookup(VirtPage{.vsid = Vsid(8), .page_index = 0x42});
  ASSERT_TRUE(hit7.has_value());
  ASSERT_TRUE(hit8.has_value());
  EXPECT_EQ(hit7->frame, 0xAAAu);
  EXPECT_EQ(hit8->frame, 0xBBBu);
  EXPECT_FALSE(tlb.Lookup(VirtPage{.vsid = Vsid(9), .page_index = 0x42}).has_value());
}

TEST(TlbTest, ReinsertSamePageUpdatesInPlace) {
  Tlb tlb("d", 64, 2);
  tlb.Insert(MakeEntry(7, 0x42, 0x111));
  tlb.Insert(MakeEntry(7, 0x42, 0x222));
  EXPECT_EQ(tlb.ValidCount(), 1u);
  EXPECT_EQ(tlb.Lookup(VirtPage{.vsid = Vsid(7), .page_index = 0x42})->frame, 0x222u);
}

TEST(TlbTest, LruReplacementWithinSet) {
  Tlb tlb("d", 64, 2);  // 32 sets; page indices 0x00 and 0x20 and 0x40 share set 0
  tlb.Insert(MakeEntry(1, 0x00));
  tlb.Insert(MakeEntry(1, 0x20));
  tlb.Lookup(VirtPage{.vsid = Vsid(1), .page_index = 0x00});  // refresh 0x00
  tlb.Insert(MakeEntry(1, 0x40));                             // evicts 0x20
  EXPECT_TRUE(tlb.Lookup(VirtPage{.vsid = Vsid(1), .page_index = 0x00}).has_value());
  EXPECT_FALSE(tlb.Lookup(VirtPage{.vsid = Vsid(1), .page_index = 0x20}).has_value());
  EXPECT_TRUE(tlb.Lookup(VirtPage{.vsid = Vsid(1), .page_index = 0x40}).has_value());
}

TEST(TlbTest, InvalidatePageIgnoresVsid) {
  // tlbie cannot compare VSIDs: every entry with the page index in the indexed set dies.
  Tlb tlb("d", 64, 2);
  tlb.Insert(MakeEntry(1, 0x42));
  tlb.Insert(MakeEntry(2, 0x42));
  const uint32_t cleared = tlb.InvalidatePage(0x42);
  EXPECT_EQ(cleared, 2u);
  EXPECT_EQ(tlb.ValidCount(), 0u);
}

TEST(TlbTest, InvalidateAll) {
  Tlb tlb("d", 64, 2);
  for (uint32_t i = 0; i < 20; ++i) {
    tlb.Insert(MakeEntry(1, i));
  }
  EXPECT_GT(tlb.ValidCount(), 0u);
  tlb.InvalidateAll();
  EXPECT_EQ(tlb.ValidCount(), 0u);
  EXPECT_EQ(tlb.KernelEntryCount(), 0u);
}

TEST(TlbTest, InvalidateMatchingByVsid) {
  Tlb tlb("d", 64, 2);
  tlb.Insert(MakeEntry(1, 0x01));
  tlb.Insert(MakeEntry(1, 0x02));
  tlb.Insert(MakeEntry(2, 0x03));
  const uint32_t cleared =
      tlb.InvalidateMatching([](const TlbEntry& e) { return e.vsid == Vsid(1); });
  EXPECT_EQ(cleared, 2u);
  EXPECT_EQ(tlb.ValidCount(), 1u);
}

TEST(TlbTest, KernelEntryCountTracksInsertEvictInvalidate) {
  Tlb tlb("d", 64, 2);
  tlb.Insert(MakeEntry(100, 0x00, 0x1, /*is_kernel=*/true));
  tlb.Insert(MakeEntry(100, 0x20, 0x2, /*is_kernel=*/true));
  tlb.Insert(MakeEntry(1, 0x01, 0x3, /*is_kernel=*/false));
  EXPECT_EQ(tlb.KernelEntryCount(), 2u);
  // Fill set 0's two ways so a kernel entry gets evicted.
  tlb.Insert(MakeEntry(1, 0x40));
  tlb.Insert(MakeEntry(1, 0x60));
  EXPECT_EQ(tlb.KernelEntryCount(), 0u);
  tlb.Insert(MakeEntry(100, 0x05, 0x1, true));
  EXPECT_EQ(tlb.KernelEntryCount(), 1u);
  tlb.InvalidatePage(0x05);
  EXPECT_EQ(tlb.KernelEntryCount(), 0u);
}

// Parameterized across the real TLB shapes (603: 64-entry, 604: 128-entry, both 2-way).
class TlbShapeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TlbShapeSweep, OccupancyNeverExceedsCapacityAndKernelCountStaysConsistent) {
  const uint32_t entries = GetParam();
  Tlb tlb("sweep", entries, 2);
  Rng rng(1234);
  for (int i = 0; i < 5000; ++i) {
    const bool kernel = rng.Chance(1, 3);
    tlb.Insert(MakeEntry(static_cast<uint32_t>(rng.NextBelow(64)),
                         static_cast<uint32_t>(rng.NextBelow(1 << 16)), 0x10, kernel));
    if (rng.Chance(1, 10)) {
      tlb.InvalidatePage(static_cast<uint32_t>(rng.NextBelow(1 << 16)));
    }
  }
  EXPECT_LE(tlb.ValidCount(), entries);
  // Cross-check the incremental kernel-entry counter against a full recount: invalidating
  // every kernel entry must clear exactly KernelEntryCount() entries and zero the counter.
  const uint32_t kernel_before = tlb.KernelEntryCount();
  const uint32_t recount =
      tlb.InvalidateMatching([](const TlbEntry& e) { return e.is_kernel; });
  EXPECT_EQ(recount, kernel_before);
  EXPECT_EQ(tlb.KernelEntryCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(RealShapes, TlbShapeSweep, ::testing::Values(64u, 128u, 256u));

}  // namespace
}  // namespace ppcmm
