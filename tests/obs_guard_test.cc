// The observability contract: instrumentation must never perturb the simulation.
//
// Recording probes and trace events touches counters and histogram memory only — the
// simulated clock advances exclusively through Machine::AddCycles. So a run with every
// observer enabled must produce hardware counters identical to the same run with
// observability off, and a disabled run must write nothing into the observers.

#include <gtest/gtest.h>

#include <string>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/obs/metrics.h"
#include "src/obs/timeline.h"

namespace ppcmm {
namespace {

// A workload crossing every instrumented path: faults, COW breaks, reloads, range and
// context flushes, context switches, idle reclaim.
void Workload(System& sys) {
  Kernel& kernel = sys.kernel();
  const TaskId a = kernel.CreateTask("a");
  kernel.Exec(a, ExecImage{.text_pages = 4, .data_pages = 64, .stack_pages = 4});
  kernel.SwitchTo(a);
  for (uint32_t i = 0; i < 32; ++i) {
    kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kStore);
  }
  const TaskId child = kernel.Fork(a);
  kernel.SwitchTo(child);
  for (uint32_t i = 0; i < 8; ++i) {
    kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kStore);  // COW
  }
  const uint32_t map = kernel.Mmap(30);
  for (uint32_t i = 0; i < 30; ++i) {
    kernel.UserTouch(EffAddr::FromPage(map + i), AccessKind::kStore);
  }
  kernel.Munmap(map, 30);        // above the cutoff: lazy context flush
  const uint32_t map2 = kernel.Mmap(4);
  for (uint32_t i = 0; i < 4; ++i) {
    kernel.UserTouch(EffAddr::FromPage(map2 + i), AccessKind::kStore);
  }
  kernel.Munmap(map2, 4);        // below the cutoff: eager per-page flush
  kernel.SwitchTo(a);
  kernel.Exit(child);
  kernel.RunIdle(Cycles(20000));  // reclaim passes
}

TEST(ObsGuardTest, EnabledObserversDoNotPerturbTheSimulation) {
  System off(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Workload(off);

  System on(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  on.machine().trace().Enable();
  on.machine().probes().SetEnabled(true);
  TimelineSampler sampler(on, Cycles(1000));
  sampler.Install();
  Workload(on);

  // The instrumented run really observed something...
  EXPECT_GT(on.machine().probes().TotalRecorded(), 0u);
  EXPECT_GT(on.machine().trace().TotalRecorded(), 0u);
  EXPECT_GT(sampler.samples().size(), 0u);
  EXPECT_GT(MetricsRegistry(on).Snapshot().counters.size(), 0u);

  // ...and yet every hardware counter — cycles first of all — is identical.
  const HwCounters& c_off = off.counters();
  const HwCounters& c_on = on.counters();
  c_off.ForEachField([&](const char* name, uint64_t value_off, bool) {
    bool found = false;
    c_on.ForEachField([&](const char* on_name, uint64_t value_on, bool) {
      if (std::string(name) == on_name) {
        EXPECT_EQ(value_off, value_on) << name;
        found = true;
      }
    });
    EXPECT_TRUE(found) << name;
  });
  EXPECT_EQ(c_off.cycles, c_on.cycles);
}

TEST(ObsGuardTest, DisabledObserversRecordNothing) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  ASSERT_FALSE(sys.machine().probes().enabled());
  Workload(sys);
  // Counters-only overhead when off: no histogram samples, no hash-miss cells, no trace
  // records, while the ordinary hardware counters kept counting.
  EXPECT_EQ(sys.machine().probes().TotalRecorded(), 0u);
  EXPECT_TRUE(sys.machine().probes().hash_miss_per_pteg().empty());
  EXPECT_EQ(sys.machine().trace().TotalRecorded(), 0u);
  EXPECT_GT(sys.counters().page_faults, 0u);
  // The metrics view over a disabled machine reports zero latency samples.
  const MetricsSnapshot snap = MetricsRegistry(sys).Snapshot();
  const uint64_t* count = snap.FindCounter("lat.page_fault.count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(*count, 0u);
}

}  // namespace
}  // namespace ppcmm
