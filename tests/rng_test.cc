// RNG tests: determinism, range bounds, rough uniformity.

#include <gtest/gtest.h>

#include <array>

#include "src/sim/check.h"
#include "src/sim/rng.h"

namespace ppcmm {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_THROW(rng.NextBelow(0), CheckFailure);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.NextInRange(5, 3), CheckFailure);
}

TEST(RngTest, RoughUniformity) {
  Rng rng(99);
  std::array<int, 8> buckets{};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) {
    ++buckets[rng.NextBelow(8)];
  }
  for (int count : buckets) {
    EXPECT_GT(count, kDraws / 8 * 0.9);
    EXPECT_LT(count, kDraws / 8 * 1.1);
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(4242);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Chance(1, 4)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.25, 0.02);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

}  // namespace
}  // namespace ppcmm
