// OS comparison model tests: the Table 3 structural orderings.

#include <gtest/gtest.h>

#include "src/workloads/os_models.h"

namespace ppcmm {
namespace {

TEST(OsModelsTest, NamesAreStable) {
  EXPECT_EQ(OsName(OsPersonality::kLinuxOptimized), "Linux/PPC");
  EXPECT_EQ(OsName(OsPersonality::kMkLinux), "MkLinux");
  EXPECT_EQ(OsName(OsPersonality::kAix), "AIX");
}

TEST(OsModelsTest, SpecsEncodeTheStructuralStory) {
  const OsModelSpec mk = MakeOsModel(OsPersonality::kMkLinux);
  const OsModelSpec linux_opt = MakeOsModel(OsPersonality::kLinuxOptimized);
  const OsModelSpec linux_base = MakeOsModel(OsPersonality::kLinuxUnoptimized);
  const OsModelSpec aix = MakeOsModel(OsPersonality::kAix);
  // The microkernel pays extra protection crossings on the syscall path.
  EXPECT_GT(mk.costs.syscall_body_unopt, linux_base.costs.syscall_body_unopt * 2);
  // AIX is monolithic but heavyweight: slower than optimized Linux, MMU-competent.
  EXPECT_GT(aix.costs.syscall_body_opt, linux_opt.costs.syscall_body_opt);
  EXPECT_TRUE(aix.opts.lazy_context_flush);
  EXPECT_FALSE(mk.opts.optimized_handlers);
  EXPECT_TRUE(linux_opt.opts.optimized_handlers);
}

TEST(OsModelsTest, Table3OrderingsHold) {
  // One 133 MHz 604, five OS personalities — Table 3's shape:
  //   Linux/PPC fastest everywhere; the Mach systems slowest; AIX between.
  const std::vector<Table3Row> rows = RunTable3(MachineConfig::Ppc604(133));
  ASSERT_EQ(rows.size(), 5u);
  const Table3Row& linux_opt = rows[0];
  const Table3Row& linux_base = rows[1];
  const Table3Row& rhapsody = rows[2];
  const Table3Row& mklinux = rows[3];
  const Table3Row& aix = rows[4];

  // Null syscall: optimized Linux beats everything; microkernels are worst.
  EXPECT_LT(linux_opt.null_syscall_us, aix.null_syscall_us);
  EXPECT_LT(aix.null_syscall_us, mklinux.null_syscall_us);
  EXPECT_LT(linux_opt.null_syscall_us, linux_base.null_syscall_us);

  // Context switch: Linux fastest, Mach systems slowest.
  EXPECT_LT(linux_opt.ctxsw_us, linux_base.ctxsw_us);
  EXPECT_LT(linux_base.ctxsw_us, mklinux.ctxsw_us);
  EXPECT_LT(linux_opt.ctxsw_us, aix.ctxsw_us);

  // Pipe latency and bandwidth: same story.
  EXPECT_LT(linux_opt.pipe_latency_us, linux_base.pipe_latency_us);
  EXPECT_LT(linux_base.pipe_latency_us, mklinux.pipe_latency_us);
  EXPECT_GT(linux_opt.pipe_bandwidth_mbs, linux_base.pipe_bandwidth_mbs);
  EXPECT_GT(linux_opt.pipe_bandwidth_mbs, mklinux.pipe_bandwidth_mbs);
  EXPECT_GT(linux_opt.pipe_bandwidth_mbs, rhapsody.pipe_bandwidth_mbs);

  // Rhapsody's colocated server sits at or below MkLinux's cost on the syscall path.
  EXPECT_LE(rhapsody.null_syscall_us, mklinux.null_syscall_us * 1.2);
}

}  // namespace
}  // namespace ppcmm
