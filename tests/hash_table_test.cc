// Hashed page table tests: the architected hash functions, search/insert/replace behaviour,
// per-page invalidation cost, zombie reclaim, and occupancy statistics (§3, §5.2, §7).

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/mmu/hash_table.h"
#include "src/sim/check.h"
#include "src/sim/rng.h"

namespace ppcmm {
namespace {

constexpr uint32_t kTestPtegs = 2048;  // the paper's 16384-entry table

class SetVsidOracle : public VsidOracle {
 public:
  void MarkLive(Vsid v) { live_.insert(v.value); }
  void Retire(Vsid v) { live_.erase(v.value); }
  bool IsLive(Vsid v) const override { return live_.contains(v.value); }

 private:
  std::unordered_set<uint32_t> live_;
};

HashedPte MakePte(uint32_t vsid, uint32_t page_index, uint32_t rpn = 0x100) {
  return HashedPte{.valid = true,
                   .vsid = Vsid(vsid),
                   .page_index = page_index,
                   .rpn = rpn,
                   .cache_inhibited = false,
                   .writable = true,
                   .referenced = false,
                   .changed = false};
}

TEST(HashTableTest, GeometryMatchesPaper) {
  HashTable htab(kTestPtegs, PhysAddr(0x180000));
  EXPECT_EQ(htab.capacity(), 16384u);
  EXPECT_EQ(htab.SizeBytes(), 128u * 1024);
}

TEST(HashTableTest, PrimaryAndSecondaryHashesAlwaysDiffer) {
  HashTable htab(kTestPtegs, PhysAddr(0));
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const VirtPage vp{.vsid = Vsid(static_cast<uint32_t>(rng.NextBelow(1 << 24))),
                      .page_index = static_cast<uint32_t>(rng.NextBelow(1 << 16))};
    const uint32_t primary = htab.PrimaryPteg(vp);
    const uint32_t secondary = htab.SecondaryPteg(vp);
    ASSERT_LT(primary, kTestPtegs);
    ASSERT_LT(secondary, kTestPtegs);
    ASSERT_NE(primary, secondary);
  }
}

TEST(HashTableTest, SlotAddressesAreArchitected) {
  HashTable htab(kTestPtegs, PhysAddr(0x180000));
  EXPECT_EQ(htab.SlotAddr(0, 0).value, 0x180000u);
  EXPECT_EQ(htab.SlotAddr(0, 1).value, 0x180008u);
  EXPECT_EQ(htab.SlotAddr(1, 0).value, 0x180040u);  // 8 slots * 8 bytes per PTEG
  EXPECT_THROW(htab.SlotAddr(kTestPtegs, 0), CheckFailure);
  EXPECT_THROW(htab.SlotAddr(0, 8), CheckFailure);
}

TEST(HashTableTest, InsertThenSearchFinds) {
  HashTable htab(kTestPtegs, PhysAddr(0));
  SetVsidOracle oracle;
  oracle.MarkLive(Vsid(10));
  NullMemCharger charger;
  const HashedPte pte = MakePte(10, 0x123, 0x456);
  EXPECT_EQ(htab.Insert(pte, oracle, charger), HtabInsertOutcome::kFreeSlot);
  const HtabSearchResult result = htab.Search(pte.virt_page(), charger);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.pte.rpn, 0x456u);
  EXPECT_LE(result.memory_refs, 16u);
}

TEST(HashTableTest, MissedSearchCostsSixteenReferences) {
  HashTable htab(kTestPtegs, PhysAddr(0));
  NullMemCharger charger;
  const HtabSearchResult result =
      htab.Search(VirtPage{.vsid = Vsid(99), .page_index = 0x77}, charger);
  EXPECT_FALSE(result.found);
  // "In the worst case, the search requires 16 memory references (2 hash table buckets,
  // containing 8 PTE's each)" — §7.
  EXPECT_EQ(result.memory_refs, 16u);
  EXPECT_EQ(charger.refs(), 16u);
}

TEST(HashTableTest, OverflowsIntoSecondaryPteg) {
  HashTable htab(kTestPtegs, PhysAddr(0));
  SetVsidOracle oracle;
  NullMemCharger charger;
  // Build 9 virtual pages that all hash to the same primary PTEG.
  const VirtPage base{.vsid = Vsid(0), .page_index = 0x100};
  const uint32_t target = htab.PrimaryPteg(base);
  uint32_t inserted = 0;
  for (uint32_t vsid = 0; inserted < 9 && vsid < (1u << 19); ++vsid) {
    const VirtPage vp{.vsid = Vsid(vsid), .page_index = 0x100};
    if (htab.PrimaryPteg(vp) != target) {
      continue;
    }
    oracle.MarkLive(Vsid(vsid));
    EXPECT_EQ(htab.Insert(MakePte(vsid, 0x100), oracle, charger),
              HtabInsertOutcome::kFreeSlot);
    // Every one must remain findable — the ninth lives in the secondary PTEG.
    const HtabSearchResult found = htab.Search(vp, charger);
    ASSERT_TRUE(found.found) << "vsid " << vsid;
    ++inserted;
  }
  EXPECT_EQ(inserted, 9u);
}

TEST(HashTableTest, ReplacementClassifiesLiveVersusZombie) {
  HashTable htab(4, PhysAddr(0));  // tiny table: 4 PTEGs, 32 entries
  SetVsidOracle oracle;
  NullMemCharger charger;
  // Fill the whole table with live entries.
  uint32_t filled = 0;
  for (uint32_t v = 0; filled < 32 && v < 4096; ++v) {
    oracle.MarkLive(Vsid(v));
    if (htab.Insert(MakePte(v, 0), oracle, charger) == HtabInsertOutcome::kFreeSlot) {
      ++filled;
    }
  }
  EXPECT_EQ(htab.ValidCount(), 32u);
  // Now a full table: inserting must replace a live entry.
  oracle.MarkLive(Vsid(9999));
  const HtabInsertOutcome live_evict = htab.Insert(MakePte(9999, 5), oracle, charger);
  EXPECT_EQ(live_evict, HtabInsertOutcome::kReplacedLive);

  // Retire everything: replacements now hit zombies.
  for (uint32_t v = 0; v < 4096; ++v) {
    oracle.Retire(Vsid(v));
  }
  oracle.MarkLive(Vsid(10000));
  const HtabInsertOutcome zombie = htab.Insert(MakePte(10000, 6), oracle, charger);
  EXPECT_EQ(zombie, HtabInsertOutcome::kReplacedZombie);
}

TEST(HashTableTest, InvalidatePageClearsExactlyThatEntry) {
  HashTable htab(kTestPtegs, PhysAddr(0));
  SetVsidOracle oracle;
  oracle.MarkLive(Vsid(5));
  NullMemCharger charger;
  htab.Insert(MakePte(5, 0x10), oracle, charger);
  htab.Insert(MakePte(5, 0x11), oracle, charger);
  EXPECT_TRUE(htab.InvalidatePage(VirtPage{.vsid = Vsid(5), .page_index = 0x10}, charger));
  EXPECT_FALSE(htab.Search(VirtPage{.vsid = Vsid(5), .page_index = 0x10}, charger).found);
  EXPECT_TRUE(htab.Search(VirtPage{.vsid = Vsid(5), .page_index = 0x11}, charger).found);
  // Invalidating again finds nothing.
  EXPECT_FALSE(htab.InvalidatePage(VirtPage{.vsid = Vsid(5), .page_index = 0x10}, charger));
}

TEST(HashTableTest, ReclaimZombiesSweepsOnlyDeadVsids) {
  HashTable htab(kTestPtegs, PhysAddr(0));
  SetVsidOracle oracle;
  NullMemCharger charger;
  for (uint32_t v = 0; v < 64; ++v) {
    oracle.MarkLive(Vsid(v));
    htab.Insert(MakePte(v, v * 3), oracle, charger);
  }
  // Retire the even VSIDs.
  for (uint32_t v = 0; v < 64; v += 2) {
    oracle.Retire(Vsid(v));
  }
  // Sweep the entire table (possibly in chunks, exercising the cursor).
  uint32_t reclaimed = 0;
  for (uint32_t pass = 0; pass < kTestPtegs / 64; ++pass) {
    reclaimed += htab.ReclaimZombies(64, oracle, charger);
  }
  EXPECT_EQ(reclaimed, 32u);
  EXPECT_EQ(htab.ValidCount(), 32u);
  for (uint32_t v = 1; v < 64; v += 2) {
    EXPECT_TRUE(htab.Search(VirtPage{.vsid = Vsid(v), .page_index = v * 3}, charger).found);
  }
}

TEST(HashTableTest, InvalidateMatchingByPredicate) {
  HashTable htab(kTestPtegs, PhysAddr(0));
  SetVsidOracle oracle;
  NullMemCharger charger;
  for (uint32_t v = 100; v < 110; ++v) {
    oracle.MarkLive(Vsid(v));
    htab.Insert(MakePte(v, 1), oracle, charger);
  }
  const uint32_t cleared = htab.InvalidateMatching(
      [](const HashedPte& pte) { return pte.vsid.value < 105; }, &charger);
  EXPECT_EQ(cleared, 5u);
  EXPECT_EQ(htab.ValidCount(), 5u);
}

TEST(HashTableTest, OccupancyHistogramAndUtilization) {
  HashTable htab(kTestPtegs, PhysAddr(0));
  SetVsidOracle oracle;
  NullMemCharger charger;
  EXPECT_EQ(htab.OccupancyHistogram()[0], kTestPtegs);
  EXPECT_DOUBLE_EQ(htab.Utilization(), 0.0);
  oracle.MarkLive(Vsid(1));
  htab.Insert(MakePte(1, 0), oracle, charger);
  htab.Insert(MakePte(1, 1), oracle, charger);
  const auto histogram = htab.OccupancyHistogram();
  uint32_t total_ptegs = 0;
  uint32_t total_entries = 0;
  for (uint32_t occupancy = 0; occupancy <= kPtesPerPteg; ++occupancy) {
    total_ptegs += histogram[occupancy];
    total_entries += histogram[occupancy] * occupancy;
  }
  EXPECT_EQ(total_ptegs, kTestPtegs);
  EXPECT_EQ(total_entries, htab.ValidCount());
  EXPECT_EQ(htab.ValidCount(), 2u);
}

TEST(HashTableTest, LiveCountTracksOracle) {
  HashTable htab(kTestPtegs, PhysAddr(0));
  SetVsidOracle oracle;
  NullMemCharger charger;
  for (uint32_t v = 0; v < 10; ++v) {
    oracle.MarkLive(Vsid(v));
    htab.Insert(MakePte(v, 0), oracle, charger);
  }
  EXPECT_EQ(htab.LiveCount(oracle), 10u);
  for (uint32_t v = 0; v < 4; ++v) {
    oracle.Retire(Vsid(v));
  }
  EXPECT_EQ(htab.LiveCount(oracle), 6u);
  EXPECT_EQ(htab.ValidCount(), 10u);  // zombies still hold valid bits
}

TEST(HashTableTest, ClearResetsEverything) {
  HashTable htab(kTestPtegs, PhysAddr(0));
  SetVsidOracle oracle;
  oracle.MarkLive(Vsid(1));
  NullMemCharger charger;
  htab.Insert(MakePte(1, 0), oracle, charger);
  htab.Clear();
  EXPECT_EQ(htab.ValidCount(), 0u);
  EXPECT_FALSE(htab.Search(VirtPage{.vsid = Vsid(1), .page_index = 0}, charger).found);
}

// Property: under random insert/search traffic with all-live VSIDs, any entry inserted and
// never displaced must be findable, and every search stays within the 16-reference bound.
TEST(HashTableProperty, InsertedEntriesRemainFindableUntilDisplaced) {
  HashTable htab(256, PhysAddr(0));
  AllLiveVsidOracle oracle;
  NullMemCharger charger;
  Rng rng(99);
  std::set<std::pair<uint32_t, uint32_t>> inserted;
  uint32_t displaced = 0;
  for (int i = 0; i < 1500; ++i) {
    const uint32_t vsid = static_cast<uint32_t>(rng.NextBelow(1 << 20));
    const uint32_t page = static_cast<uint32_t>(rng.NextBelow(1 << 16));
    const HtabInsertOutcome outcome = htab.Insert(MakePte(vsid, page), oracle, charger);
    if (outcome != HtabInsertOutcome::kFreeSlot) {
      ++displaced;  // something got replaced; we only track that it happened
    }
    inserted.insert({vsid, page});
    const HtabSearchResult found =
        htab.Search(VirtPage{.vsid = Vsid(vsid), .page_index = page}, charger);
    ASSERT_TRUE(found.found);
    ASSERT_LE(found.memory_refs, 16u);
  }
  // With 1500 inserts into 2048 slots some displacement is plausible but occupancy must
  // never exceed capacity.
  EXPECT_LE(htab.ValidCount(), htab.capacity());
  EXPECT_EQ(htab.ValidCount() + displaced, 1500u);
}

}  // namespace
}  // namespace ppcmm
