// Machine profile tests: the 603/604 configurations match the paper's hardware description.

#include <gtest/gtest.h>

#include "src/sim/cycle_types.h"
#include "src/sim/machine.h"
#include "src/sim/machine_config.h"

namespace ppcmm {
namespace {

TEST(MachineConfigTest, Ppc603Profile) {
  const MachineConfig mc = MachineConfig::Ppc603(180);
  EXPECT_EQ(mc.cpu, CpuModel::kPpc603);
  EXPECT_EQ(mc.reload, TlbReloadMechanism::kSoftware);
  EXPECT_EQ(mc.clock_mhz, 180u);
  // "The PowerPC 603 TLB has 128 entries" (§5.1) — 64 instruction + 64 data.
  EXPECT_EQ(mc.itlb_entries + mc.dtlb_entries, 128u);
  // 32-cycle miss-handler invoke/return (§5).
  EXPECT_EQ(mc.tlb_miss_interrupt_cycles, 32u);
  EXPECT_EQ(mc.ram_bytes, 32ull * 1024 * 1024);
}

TEST(MachineConfigTest, Ppc604Profile) {
  const MachineConfig mc = MachineConfig::Ppc604(185);
  EXPECT_EQ(mc.cpu, CpuModel::kPpc604);
  EXPECT_EQ(mc.reload, TlbReloadMechanism::kHardwareHtabWalk);
  // "the 604 has 256 entries" (§5.1).
  EXPECT_EQ(mc.itlb_entries + mc.dtlb_entries, 256u);
  // "adds at least 91 more cycles to just invoke the handler" (§5).
  EXPECT_EQ(mc.hash_miss_interrupt_cycles, 91u);
  // The 604's caches are double the 603's (§11).
  const MachineConfig m603 = MachineConfig::Ppc603(180);
  EXPECT_EQ(mc.icache.size_bytes, 2 * m603.icache.size_bytes);
  EXPECT_EQ(mc.dcache.size_bytes, 2 * m603.dcache.size_bytes);
}

TEST(MachineConfigTest, FastBoardHasLowerMemoryLatency) {
  const MachineConfig normal = MachineConfig::Ppc604(200);
  const MachineConfig fast = MachineConfig::Ppc604FastBoard(200);
  EXPECT_LT(fast.memory.line_fill_cycles, normal.memory.line_fill_cycles);
  EXPECT_LT(fast.memory.single_beat_cycles, normal.memory.single_beat_cycles);
}

TEST(MachineConfigTest, HtabGeometry) {
  const MachineConfig mc = MachineConfig::Ppc604(185);
  EXPECT_EQ(mc.htab_ptegs, 2048u);
  EXPECT_EQ(mc.HtabEntries(), 16384u);  // "600–700 out of 16384" (§7)
  EXPECT_EQ(mc.PageSizeBytes(), 4096u);
  EXPECT_EQ(mc.NumPageFrames(), 8192u);
}

TEST(CycleTypesTest, Conversions) {
  EXPECT_DOUBLE_EQ(CyclesToMicros(Cycles(133), 133), 1.0);
  EXPECT_DOUBLE_EQ(CyclesToSeconds(Cycles(133'000'000), 133), 1.0);
  EXPECT_EQ(MicrosToCycles(2.0, 100).value, 200u);
  EXPECT_EQ((Cycles(3) + Cycles(4)).value, 7u);
  EXPECT_EQ((Cycles(10) - Cycles(4)).value, 6u);
  EXPECT_EQ((Cycles(3) * 4).value, 12u);
  EXPECT_LT(Cycles(3), Cycles(4));
}

TEST(MachineTest, TouchAdvancesClock) {
  Machine machine(MachineConfig::Ppc604(185));
  EXPECT_EQ(machine.Now().value, 0u);
  machine.TouchData(PhysAddr(0x1000), false);  // cold miss
  EXPECT_EQ(machine.Now().value, machine.config().memory.line_fill_cycles);
  machine.TouchData(PhysAddr(0x1000), false);  // hit
  EXPECT_EQ(machine.Now().value, machine.config().memory.line_fill_cycles + 1);
  machine.TouchData(PhysAddr(0x2000), false, /*cached=*/false);
  EXPECT_EQ(machine.Now().value, machine.config().memory.line_fill_cycles + 1 +
                                     machine.config().memory.single_beat_cycles);
}

TEST(MachineTest, SplitCaches) {
  Machine machine(MachineConfig::Ppc604(185));
  machine.TouchInstruction(PhysAddr(0x3000));
  EXPECT_EQ(machine.icache().stats().misses, 1u);
  EXPECT_EQ(machine.dcache().stats().misses, 0u);
  EXPECT_TRUE(machine.icache().Contains(PhysAddr(0x3000)));
  EXPECT_FALSE(machine.dcache().Contains(PhysAddr(0x3000)));
}

TEST(MachineTest, ElapsedTimeUsesClockRate) {
  Machine machine(MachineConfig::Ppc604(200));
  machine.AddCycles(Cycles(2000));
  EXPECT_DOUBLE_EQ(machine.ElapsedMicros(), 10.0);
}

}  // namespace
}  // namespace ppcmm
