// The host fast-path contract: memoization must be simulation-invisible.
//
// Mmu's fast path replays the exact counter increments, LRU ticks, and cache charges the
// full translation walk would have produced, so every HwCounters field — cycles first of
// all — must be bit-identical with the fast path on and off, across every reload strategy,
// every flush scheme, fault injection, and the torture harness. These tests run each
// workload twice and diff the complete counter set, then poke each invalidation edge the
// memo depends on: context switches, lazy VSID-bump flushes, spurious TLB flush injection,
// deferred C-bit first-stores, and protection (COW) faults.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/sim/fault_injector.h"
#include "src/verify/torture.h"
#include "src/workloads/kernel_compile.h"
#include "src/workloads/lmbench.h"

namespace ppcmm {
namespace {

// Restores the process-wide fast-path default no matter how a test exits.
struct ScopedFastPathDefault {
  ~ScopedFastPathDefault() { Mmu::SetFastPathDefault(std::nullopt); }
};

void ExpectCountersIdentical(const HwCounters& off, const HwCounters& on) {
  off.ForEachField([&](const char* name, uint64_t value_off, bool) {
    bool found = false;
    on.ForEachField([&](const char* on_name, uint64_t value_on, bool) {
      if (std::string(name) == on_name) {
        EXPECT_EQ(value_off, value_on) << name;
        found = true;
      }
    });
    EXPECT_TRUE(found) << name;
  });
  EXPECT_EQ(off.cycles, on.cycles);
}

// The obs_guard workload shape: faults, COW breaks, reloads, eager and lazy flushes,
// context switches, idle reclaim — every translation path the MMU has.
void MixedWorkload(System& sys) {
  Kernel& kernel = sys.kernel();
  const TaskId a = kernel.CreateTask("a");
  kernel.Exec(a, ExecImage{.text_pages = 4, .data_pages = 64, .stack_pages = 4});
  kernel.SwitchTo(a);
  for (uint32_t i = 0; i < 32; ++i) {
    kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kStore);
  }
  const TaskId child = kernel.Fork(a);
  kernel.SwitchTo(child);
  for (uint32_t i = 0; i < 8; ++i) {
    kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kStore);  // COW
  }
  const uint32_t map = kernel.Mmap(30);
  for (uint32_t i = 0; i < 30; ++i) {
    kernel.UserTouch(EffAddr::FromPage(map + i), AccessKind::kStore);
  }
  kernel.Munmap(map, 30);  // above the cutoff: lazy VSID-bump context flush
  const uint32_t map2 = kernel.Mmap(4);
  for (uint32_t i = 0; i < 4; ++i) {
    kernel.UserTouch(EffAddr::FromPage(map2 + i), AccessKind::kStore);
  }
  kernel.Munmap(map2, 4);  // below the cutoff: eager per-page tlbie flush
  kernel.SwitchTo(a);
  kernel.Exit(child);
  kernel.RunIdle(Cycles(20000));
}

struct ConfigCase {
  const char* name;
  MachineConfig machine;
  OptimizationConfig opts;
};

std::vector<ConfigCase> AllStrategies() {
  return {
      {"604_baseline", MachineConfig::Ppc604(133), OptimizationConfig::Baseline()},
      {"604_all_opts", MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations()},
      {"603_sw_htab", MachineConfig::Ppc603(133), OptimizationConfig::Baseline()},
      {"603_direct", MachineConfig::Ppc603(133), OptimizationConfig::OnlyDirectReload()},
      {"604_uncached_pt", MachineConfig::Ppc604(133),
       OptimizationConfig::AllPlusUncachedPageTables()},
  };
}

TEST(FastPathTest, MixedWorkloadIsBitIdenticalAcrossStrategies) {
  for (const ConfigCase& c : AllStrategies()) {
    SCOPED_TRACE(c.name);
    System off(c.machine, c.opts);
    off.mmu().SetFastPathEnabled(false);
    MixedWorkload(off);

    System on(c.machine, c.opts);
    on.mmu().SetFastPathEnabled(true);
    MixedWorkload(on);

    EXPECT_EQ(off.mmu().fast_path_hits(), 0u);
    EXPECT_GT(on.mmu().fast_path_hits(), 0u) << "fast path never engaged";
    ExpectCountersIdentical(off.counters(), on.counters());
  }
}

TEST(FastPathTest, LmBenchPointsAreBitIdentical) {
  auto run = [](bool fast) {
    System sys(MachineConfig::Ppc604(133), OptimizationConfig::AllOptimizations());
    sys.mmu().SetFastPathEnabled(fast);
    LmBenchParams params;
    params.syscall_iters = 100;
    params.ctxsw_passes = 15;
    params.pipe_latency_iters = 30;
    LmBench suite(sys, params);
    const double null_us = suite.NullSyscallUs();
    const double ctxsw_us = suite.ContextSwitchUs(2);
    const double pipe_us = suite.PipeLatencyUs();
    const double bw = suite.PipeBandwidthMbs();
    return std::tuple<double, double, double, double, HwCounters>(null_us, ctxsw_us, pipe_us,
                                                                  bw, sys.counters());
  };
  const auto [null_off, ctxsw_off, pipe_off, bw_off, c_off] = run(false);
  const auto [null_on, ctxsw_on, pipe_on, bw_on, c_on] = run(true);
  EXPECT_EQ(null_off, null_on);
  EXPECT_EQ(ctxsw_off, ctxsw_on);
  EXPECT_EQ(pipe_off, pipe_on);
  EXPECT_EQ(bw_off, bw_on);
  ExpectCountersIdentical(c_off, c_on);
}

TEST(FastPathTest, KernelCompileIsBitIdenticalAndMostlyFastPathed) {
  auto run = [](bool fast) {
    System sys(MachineConfig::Ppc604(133), OptimizationConfig::AllOptimizations());
    sys.mmu().SetFastPathEnabled(fast);
    KernelCompileConfig cc;
    cc.compilation_units = 3;
    const KernelCompileResult result = RunKernelCompile(sys, cc);
    const uint64_t hits = sys.mmu().fast_path_hits();
    const uint64_t misses = sys.mmu().fast_path_misses();
    return std::tuple<double, HwCounters, uint64_t, uint64_t>(result.seconds, sys.counters(),
                                                              hits, misses);
  };
  const auto [sec_off, c_off, hits_off, misses_off] = run(false);
  const auto [sec_on, c_on, hits_on, misses_on] = run(true);
  EXPECT_EQ(sec_off, sec_on);
  ExpectCountersIdentical(c_off, c_on);
  EXPECT_EQ(hits_off + misses_off, 0u);
  // The compile re-touches its working set constantly; the memo should carry most accesses.
  const double hit_rate =
      static_cast<double>(hits_on) / static_cast<double>(hits_on + misses_on);
  EXPECT_GT(hit_rate, 0.5) << hits_on << " hits / " << misses_on << " misses";
}

TEST(FastPathTest, TortureSeedsWithInjectionAreIdentical) {
  // The torture harness builds its own System, so flip the process-wide default around it.
  // Fault injection exercises every hostile invalidation source: spurious TLB flushes,
  // HTAB eviction storms, VSID wraps, zombie floods.
  ScopedFastPathDefault restore;
  for (const uint64_t seed : {1ull, 7ull, 42ull}) {
    SCOPED_TRACE(seed);
    TortureOptions options;
    options.seed = seed;
    options.ops = 1500;
    options.audit_period = 128;
    options.htab_eviction_storm_one_in = 300;
    options.spurious_tlb_flush_one_in = 200;
    options.vsid_wrap_one_in = 700;
    options.zombie_flood_one_in = 400;

    Mmu::SetFastPathDefault(false);
    const TortureResult off = RunTorture(options);
    Mmu::SetFastPathDefault(true);
    const TortureResult on = RunTorture(options);

    EXPECT_FALSE(off.failed) << off.failure_report;
    EXPECT_FALSE(on.failed) << on.failure_report;
    EXPECT_EQ(off.ops_executed, on.ops_executed);
    EXPECT_EQ(off.oom_events, on.oom_events);
    EXPECT_EQ(off.fault_fires, on.fault_fires);
    EXPECT_EQ(off.audit_stats.tlb_entries_checked, on.audit_stats.tlb_entries_checked);
    EXPECT_EQ(off.audit_stats.htab_entries_checked, on.audit_stats.htab_entries_checked);
    // The trace ring records (cycle, event) pairs — byte-identical JSON means the two runs
    // were indistinguishable moment by moment, not just in the totals.
    EXPECT_EQ(off.trace_json, on.trace_json);
  }
}

TEST(FastPathTest, LazyVsidBumpFlushInvalidatesTheMemo) {
  // A lazy whole-context flush retires the VSIDs and reloads the segment registers; a memo
  // installed before the flush must not serve the dead context's translations after it.
  System off(MachineConfig::Ppc604(133), OptimizationConfig::AllOptimizations());
  off.mmu().SetFastPathEnabled(false);
  System on(MachineConfig::Ppc604(133), OptimizationConfig::AllOptimizations());
  on.mmu().SetFastPathEnabled(true);
  auto drive = [](System& sys) {
    Kernel& kernel = sys.kernel();
    const TaskId t = kernel.CreateTask("t");
    kernel.Exec(t, ExecImage{.text_pages = 2, .data_pages = 8, .stack_pages = 2});
    kernel.SwitchTo(t);
    const uint32_t map = kernel.Mmap(40);
    for (int pass = 0; pass < 3; ++pass) {
      for (uint32_t i = 0; i < 40; ++i) {
        kernel.UserTouch(EffAddr::FromPage(map + i), AccessKind::kStore);
      }
    }
    kernel.Munmap(map, 40);
    const uint32_t map2 = kernel.Mmap(40);
    for (uint32_t i = 0; i < 40; ++i) {
      kernel.UserTouch(EffAddr::FromPage(map2 + i), AccessKind::kStore);
    }
  };
  drive(off);
  drive(on);
  EXPECT_GT(on.mmu().fast_path_hits(), 0u);
  EXPECT_GT(on.counters().tlb_context_flushes, 0u);
  ExpectCountersIdentical(off.counters(), on.counters());
}

TEST(FastPathTest, SpuriousTlbFlushInjectionIsIdentical) {
  auto run = [](bool fast) {
    System sys(MachineConfig::Ppc604(133), OptimizationConfig::AllOptimizations());
    sys.mmu().SetFastPathEnabled(fast);
    FaultInjector injector(/*seed=*/99);
    injector.Enable(FaultClass::kSpuriousTlbFlush, 64);
    sys.kernel().SetFaultInjector(&injector);
    Kernel& kernel = sys.kernel();
    const TaskId t = kernel.CreateTask("t");
    kernel.Exec(t, ExecImage{.text_pages = 2, .data_pages = 32, .stack_pages = 2});
    kernel.SwitchTo(t);
    for (int pass = 0; pass < 20; ++pass) {
      for (uint32_t i = 0; i < 16; ++i) {
        kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kStore);
      }
    }
    sys.kernel().SetFaultInjector(nullptr);
    return std::pair<HwCounters, uint64_t>(sys.counters(),
                                           injector.Fires(FaultClass::kSpuriousTlbFlush));
  };
  const auto [c_off, fires_off] = run(false);
  const auto [c_on, fires_on] = run(true);
  ASSERT_GT(fires_off, 0u);
  // Identical poll streams: the fast path preserves the injector's position in its RNG
  // sequence because the poll stays ahead of the memo check on every access.
  EXPECT_EQ(fires_off, fires_on);
  EXPECT_GT(c_on.tlb_all_flushes, 0u);  // satellite: tlbia is now counted
  ExpectCountersIdentical(c_off, c_on);
}

TEST(FastPathTest, DeferredFirstStoreStillTrapsThenFastPaths) {
  // Deferred C-bit scheme (eager_dirty_marking off): a load memoizes a clean translation;
  // the first store must fall off the fast path into the C-bit trap; later stores fly.
  OptimizationConfig opts = OptimizationConfig::Baseline();
  ASSERT_FALSE(opts.eager_dirty_marking);
  auto run = [&](bool fast) {
    System sys(MachineConfig::Ppc604(133), opts);
    sys.mmu().SetFastPathEnabled(fast);
    Kernel& kernel = sys.kernel();
    const TaskId t = kernel.CreateTask("t");
    kernel.Exec(t, ExecImage{.text_pages = 2, .data_pages = 16, .stack_pages = 2});
    kernel.SwitchTo(t);
    for (uint32_t i = 0; i < 8; ++i) {
      kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kLoad);
      kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kLoad);
    }
    const uint64_t hits_before_stores = sys.mmu().fast_path_hits();
    for (uint32_t i = 0; i < 8; ++i) {
      kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kStore);
    }
    const uint64_t hits_after_first_stores = sys.mmu().fast_path_hits();
    for (uint32_t i = 0; i < 8; ++i) {
      kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kStore);
    }
    const uint64_t hits_after_second_stores = sys.mmu().fast_path_hits();
    return std::tuple<HwCounters, uint64_t, uint64_t, uint64_t>(
        sys.counters(), hits_before_stores, hits_after_first_stores, hits_after_second_stores);
  };
  const auto [c_off, b_off, f_off, s_off] = run(false);
  const auto [c_on, hits_before, hits_first, hits_second] = run(true);
  EXPECT_GT(c_on.dirty_bit_updates, 0u);
  ExpectCountersIdentical(c_off, c_on);
  // Repeated loads hit the memo; the first store round must not (clean entries)...
  EXPECT_GT(hits_before, 0u);
  EXPECT_EQ(hits_first, hits_before);
  // ...and once the C bit is set, the second store round rides the fast path.
  EXPECT_GE(hits_second, hits_first + 8);
}

TEST(FastPathTest, CowProtectionFaultFallsToSlowPath) {
  auto run = [](bool fast) {
    System sys(MachineConfig::Ppc604(133), OptimizationConfig::AllOptimizations());
    sys.mmu().SetFastPathEnabled(fast);
    Kernel& kernel = sys.kernel();
    const TaskId parent = kernel.CreateTask("parent");
    kernel.Exec(parent, ExecImage{.text_pages = 2, .data_pages = 16, .stack_pages = 2});
    kernel.SwitchTo(parent);
    for (uint32_t i = 0; i < 8; ++i) {
      kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kStore);
    }
    const TaskId child = kernel.Fork(parent);
    kernel.SwitchTo(child);
    // Read first (memoizes the read-only shared translation), then store (COW break: the
    // memoized entry fails the write gate, the slow path faults and remaps).
    for (uint32_t i = 0; i < 8; ++i) {
      kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kLoad);
      kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kStore);
      kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kStore);
    }
    kernel.Exit(child);
    return sys.counters();
  };
  const HwCounters c_off = run(false);
  const HwCounters c_on = run(true);
  EXPECT_GT(c_on.page_faults, 0u);
  ExpectCountersIdentical(c_off, c_on);
}

TEST(FastPathTest, DisabledInstanceNeverEngages) {
  System sys(MachineConfig::Ppc604(133), OptimizationConfig::AllOptimizations());
  sys.mmu().SetFastPathEnabled(false);
  MixedWorkload(sys);
  EXPECT_EQ(sys.mmu().fast_path_hits(), 0u);
  EXPECT_EQ(sys.mmu().fast_path_misses(), 0u);
}

TEST(FastPathTest, DefaultToggleGovernsNewInstances) {
  ScopedFastPathDefault restore;
  Mmu::SetFastPathDefault(false);
  {
    System sys(MachineConfig::Ppc604(133), OptimizationConfig::AllOptimizations());
    EXPECT_FALSE(sys.mmu().fast_path_enabled());
  }
  Mmu::SetFastPathDefault(true);
  {
    System sys(MachineConfig::Ppc604(133), OptimizationConfig::AllOptimizations());
    EXPECT_TRUE(sys.mmu().fast_path_enabled());
  }
}

}  // namespace
}  // namespace ppcmm
