// VSID space tests: context allocation, scatter, retirement (zombies), kernel VSIDs.

#include <gtest/gtest.h>

#include <set>

#include "src/kernel/vsid_space.h"
#include "src/sim/check.h"

namespace ppcmm {
namespace {

TEST(VsidSpaceTest, ContextsAreMonotonic) {
  VsidSpace vsids;
  const ContextId a = vsids.NewContext();
  const ContextId b = vsids.NewContext();
  EXPECT_LT(a, b);
  EXPECT_EQ(vsids.LiveContextCount(), 2u);
}

TEST(VsidSpaceTest, UserVsidsDistinctAcrossSegmentsAndContexts) {
  VsidSpace vsids(kDefaultVsidScatter);
  std::set<uint32_t> seen;
  for (int c = 0; c < 64; ++c) {
    const ContextId ctx = vsids.NewContext();
    for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
      EXPECT_TRUE(seen.insert(vsids.UserVsid(ctx, seg).value).second)
          << "collision at context " << ctx.value << " segment " << seg;
    }
  }
}

TEST(VsidSpaceTest, LivenessFollowsRetirement) {
  VsidSpace vsids;
  const ContextId ctx = vsids.NewContext();
  const Vsid v = vsids.UserVsid(ctx, 0);
  EXPECT_TRUE(vsids.IsLive(v));
  vsids.Retire(ctx);
  EXPECT_FALSE(vsids.IsLive(v));
  EXPECT_EQ(vsids.LiveContextCount(), 0u);
  // Retiring twice is harmless.
  vsids.Retire(ctx);
}

TEST(VsidSpaceTest, RetiredVsidsAreNeverReissuedSoon) {
  // The lazy-flush correctness condition: a zombie VSID must not match a live context.
  VsidSpace vsids;
  std::set<uint32_t> retired;
  for (int i = 0; i < 1000; ++i) {
    const ContextId ctx = vsids.NewContext();
    for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
      const uint32_t v = vsids.UserVsid(ctx, seg).value;
      EXPECT_FALSE(retired.contains(v)) << "VSID " << v << " reused while zombie";
    }
    for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
      retired.insert(vsids.UserVsid(ctx, seg).value);
    }
    vsids.Retire(ctx);
  }
}

TEST(VsidSpaceTest, KernelVsidsAlwaysLive) {
  VsidSpace vsids;
  for (uint32_t seg = kFirstKernelSegment; seg < kNumSegments; ++seg) {
    const Vsid v = VsidSpace::KernelVsid(seg);
    EXPECT_TRUE(VsidSpace::IsKernelVsid(v));
    EXPECT_TRUE(vsids.IsLive(v));
  }
  EXPECT_FALSE(VsidSpace::IsKernelVsid(Vsid(0x1234)));
  EXPECT_THROW(VsidSpace::KernelVsid(0), CheckFailure);
  EXPECT_THROW(VsidSpace::KernelVsid(16), CheckFailure);
}

TEST(VsidSpaceTest, SegmentImageMixesUserAndKernel) {
  VsidSpace vsids;
  const ContextId ctx = vsids.NewContext();
  const auto image = vsids.SegmentImage(ctx);
  for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
    EXPECT_EQ(image[seg], vsids.UserVsid(ctx, seg));
  }
  for (uint32_t seg = kFirstKernelSegment; seg < kNumSegments; ++seg) {
    EXPECT_EQ(image[seg], VsidSpace::KernelVsid(seg));
  }
}

TEST(VsidSpaceTest, UserVsidsNeverCollideWithKernelVsids) {
  VsidSpace vsids;
  for (int i = 0; i < 4096; ++i) {
    const ContextId ctx = vsids.NewContext();
    for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
      EXPECT_FALSE(VsidSpace::IsKernelVsid(vsids.UserVsid(ctx, seg)));
    }
    vsids.Retire(ctx);
  }
}

TEST(VsidSpaceTest, OutOfRangeSegmentThrows) {
  VsidSpace vsids;
  const ContextId ctx = vsids.NewContext();
  EXPECT_THROW(vsids.UserVsid(ctx, kFirstKernelSegment), CheckFailure);
  EXPECT_THROW(VsidSpace(0), CheckFailure);
}

// ---- 24-bit wraparound ----
//
// A huge scatter makes the 24-bit VSID space wrap after a handful of contexts, so epoch
// rollover — which production scatters hit only after millions of contexts — is exercised
// directly. The correctness condition: VSIDs issued before a rollover (live or zombie) must
// never alias VSIDs issued after it, provided the rollover hook purges all translations.

TEST(VsidWrapTest, RolloverHookFiresBeforeAnyVsidIsReissued) {
  constexpr uint32_t kHugeScatter = 1u << 20;  // epoch rolls every ~16 contexts
  VsidSpace vsids(kHugeScatter);
  std::set<uint32_t> outstanding;  // VSIDs that would still be cached somewhere
  uint64_t hook_calls = 0;
  vsids.SetRolloverHook([&] {
    ++hook_calls;
    outstanding.clear();  // the kernel's hook purges every user translation
  });
  for (int i = 0; i < 100; ++i) {
    const ContextId ctx = vsids.NewContext();
    for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
      const uint32_t v = vsids.UserVsid(ctx, seg).value;
      EXPECT_TRUE(outstanding.insert(v).second)
          << "pre-rollover zombie VSID 0x" << std::hex << v << " resurrected at context "
          << std::dec << ctx.value << " (epoch " << vsids.CurrentEpoch() << ")";
    }
    vsids.Retire(ctx);  // zombie: stays outstanding until a rollover purges it
  }
  EXPECT_GE(hook_calls, 5u);
  EXPECT_EQ(vsids.EpochRollovers(), hook_calls);
  EXPECT_GE(vsids.CurrentEpoch(), hook_calls);
}

TEST(VsidWrapTest, ForceWrapRollsOverOnNextAllocation) {
  VsidSpace vsids(kDefaultVsidScatter);
  const ContextId before = vsids.NewContext();
  uint64_t hook_calls = 0;
  vsids.SetRolloverHook([&] { ++hook_calls; });
  EXPECT_EQ(vsids.EpochRollovers(), 0u);
  vsids.ForceWrap();
  const ContextId after = vsids.NewContext();
  EXPECT_EQ(hook_calls, 1u);
  EXPECT_EQ(vsids.EpochRollovers(), 1u);
  EXPECT_EQ(vsids.CurrentEpoch(), 1u);
  EXPECT_LT(before.value, after.value) << "the counter must only ever move forward";
}

TEST(VsidWrapTest, HookMayAllocateContextsReentrantly) {
  // The kernel's rollover hook reassigns every live task by calling NewContext from inside
  // the rollover; the recursion must neither loop nor re-trigger.
  constexpr uint32_t kHugeScatter = 1u << 20;
  VsidSpace vsids(kHugeScatter);
  ContextId reassigned{0};
  uint64_t hook_calls = 0;
  vsids.SetRolloverHook([&] {
    ++hook_calls;
    reassigned = vsids.NewContext();
  });
  vsids.ForceWrap();
  const ContextId outer = vsids.NewContext();
  EXPECT_EQ(hook_calls, 1u);
  EXPECT_NE(reassigned.value, 0u);
  EXPECT_NE(reassigned.value, outer.value);
  EXPECT_TRUE(vsids.ContextLive(reassigned));
  EXPECT_TRUE(vsids.ContextLive(outer));
}

TEST(VsidWrapTest, ContextsWhoseVsidsWouldHitKernelBlockAreSkipped) {
  // scatter 0x1FFFFE puts context 8's segment-0 VSID at exactly 0xFFFFF0 — the base of the
  // fixed kernel VSID block. The allocator must skip such contexts entirely.
  VsidSpace vsids(0x1FFFFE);
  vsids.SetRolloverHook([] {});
  for (int i = 0; i < 32; ++i) {
    const ContextId ctx = vsids.NewContext();
    for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
      EXPECT_FALSE(VsidSpace::IsKernelVsid(vsids.UserVsid(ctx, seg)))
          << "context " << ctx.value << " segment " << seg;
    }
    vsids.Retire(ctx);
  }
}

// The scatter sweep: any constant must produce distinct VSIDs for modest context counts;
// quality (hash spread) is measured by bench/sec5_hash_utilization, not asserted here.
class ScatterSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ScatterSweep, NoCollisionsForModestContextCounts) {
  VsidSpace vsids(GetParam());
  std::set<uint32_t> seen;
  for (int c = 0; c < 128; ++c) {
    const ContextId ctx = vsids.NewContext();
    for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
      EXPECT_TRUE(seen.insert(vsids.UserVsid(ctx, seg).value).second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Constants, ScatterSweep,
                         ::testing::Values(1u, 16u, 111u, 897u, 1009u));

}  // namespace
}  // namespace ppcmm
