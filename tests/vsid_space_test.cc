// VSID space tests: context allocation, scatter, retirement (zombies), kernel VSIDs.

#include <gtest/gtest.h>

#include <set>

#include "src/kernel/vsid_space.h"
#include "src/sim/check.h"

namespace ppcmm {
namespace {

TEST(VsidSpaceTest, ContextsAreMonotonic) {
  VsidSpace vsids;
  const ContextId a = vsids.NewContext();
  const ContextId b = vsids.NewContext();
  EXPECT_LT(a, b);
  EXPECT_EQ(vsids.LiveContextCount(), 2u);
}

TEST(VsidSpaceTest, UserVsidsDistinctAcrossSegmentsAndContexts) {
  VsidSpace vsids(kDefaultVsidScatter);
  std::set<uint32_t> seen;
  for (int c = 0; c < 64; ++c) {
    const ContextId ctx = vsids.NewContext();
    for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
      EXPECT_TRUE(seen.insert(vsids.UserVsid(ctx, seg).value).second)
          << "collision at context " << ctx.value << " segment " << seg;
    }
  }
}

TEST(VsidSpaceTest, LivenessFollowsRetirement) {
  VsidSpace vsids;
  const ContextId ctx = vsids.NewContext();
  const Vsid v = vsids.UserVsid(ctx, 0);
  EXPECT_TRUE(vsids.IsLive(v));
  vsids.Retire(ctx);
  EXPECT_FALSE(vsids.IsLive(v));
  EXPECT_EQ(vsids.LiveContextCount(), 0u);
  // Retiring twice is harmless.
  vsids.Retire(ctx);
}

TEST(VsidSpaceTest, RetiredVsidsAreNeverReissuedSoon) {
  // The lazy-flush correctness condition: a zombie VSID must not match a live context.
  VsidSpace vsids;
  std::set<uint32_t> retired;
  for (int i = 0; i < 1000; ++i) {
    const ContextId ctx = vsids.NewContext();
    for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
      const uint32_t v = vsids.UserVsid(ctx, seg).value;
      EXPECT_FALSE(retired.contains(v)) << "VSID " << v << " reused while zombie";
    }
    for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
      retired.insert(vsids.UserVsid(ctx, seg).value);
    }
    vsids.Retire(ctx);
  }
}

TEST(VsidSpaceTest, KernelVsidsAlwaysLive) {
  VsidSpace vsids;
  for (uint32_t seg = kFirstKernelSegment; seg < kNumSegments; ++seg) {
    const Vsid v = VsidSpace::KernelVsid(seg);
    EXPECT_TRUE(VsidSpace::IsKernelVsid(v));
    EXPECT_TRUE(vsids.IsLive(v));
  }
  EXPECT_FALSE(VsidSpace::IsKernelVsid(Vsid(0x1234)));
  EXPECT_THROW(VsidSpace::KernelVsid(0), CheckFailure);
  EXPECT_THROW(VsidSpace::KernelVsid(16), CheckFailure);
}

TEST(VsidSpaceTest, SegmentImageMixesUserAndKernel) {
  VsidSpace vsids;
  const ContextId ctx = vsids.NewContext();
  const auto image = vsids.SegmentImage(ctx);
  for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
    EXPECT_EQ(image[seg], vsids.UserVsid(ctx, seg));
  }
  for (uint32_t seg = kFirstKernelSegment; seg < kNumSegments; ++seg) {
    EXPECT_EQ(image[seg], VsidSpace::KernelVsid(seg));
  }
}

TEST(VsidSpaceTest, UserVsidsNeverCollideWithKernelVsids) {
  VsidSpace vsids;
  for (int i = 0; i < 4096; ++i) {
    const ContextId ctx = vsids.NewContext();
    for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
      EXPECT_FALSE(VsidSpace::IsKernelVsid(vsids.UserVsid(ctx, seg)));
    }
    vsids.Retire(ctx);
  }
}

TEST(VsidSpaceTest, OutOfRangeSegmentThrows) {
  VsidSpace vsids;
  const ContextId ctx = vsids.NewContext();
  EXPECT_THROW(vsids.UserVsid(ctx, kFirstKernelSegment), CheckFailure);
  EXPECT_THROW(VsidSpace(0), CheckFailure);
}

// The scatter sweep: any constant must produce distinct VSIDs for modest context counts;
// quality (hash spread) is measured by bench/sec5_hash_utilization, not asserted here.
class ScatterSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ScatterSweep, NoCollisionsForModestContextCounts) {
  VsidSpace vsids(GetParam());
  std::set<uint32_t> seen;
  for (int c = 0; c < 128; ++c) {
    const ContextId ctx = vsids.NewContext();
    for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
      EXPECT_TRUE(seen.insert(vsids.UserVsid(ctx, seg).value).second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Constants, ScatterSweep,
                         ::testing::Values(1u, 16u, 111u, 897u, 1009u));

}  // namespace
}  // namespace ppcmm
