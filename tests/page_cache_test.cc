// Page cache tests: file lifecycle, deterministic contents, hit/miss accounting, eviction.

#include <gtest/gtest.h>

#include "src/kernel/mem_manager.h"
#include "src/kernel/opt_config.h"
#include "src/kernel/page_cache.h"
#include "src/pagetable/page_allocator.h"
#include "src/sim/check.h"
#include "src/sim/machine.h"

namespace ppcmm {
namespace {

struct Fixture {
  Fixture()
      : machine(MachineConfig::Ppc604(185)),
        allocator(512, 2048),
        config(OptimizationConfig::Baseline()),
        mem(machine, allocator, config),
        cache(machine, mem) {}

  Machine machine;
  PageAllocator allocator;
  OptimizationConfig config;
  MemManager mem;
  PageCache cache;
};

TEST(PageCacheTest, CreateAndSize) {
  Fixture f;
  const FileId file = f.cache.CreateFile(12);
  EXPECT_EQ(f.cache.SizePages(file), 12u);
  const FileId other = f.cache.CreateFile(3);
  EXPECT_NE(file, other);
  EXPECT_EQ(f.cache.SizePages(other), 3u);
}

TEST(PageCacheTest, FirstAccessMissesThenHits) {
  Fixture f;
  const FileId file = f.cache.CreateFile(4);
  bool miss = false;
  const uint32_t frame = f.cache.GetPage(file, 2, &miss);
  EXPECT_TRUE(miss);
  EXPECT_TRUE(f.allocator.IsAllocated(frame));
  bool miss2 = true;
  const uint32_t frame2 = f.cache.GetPage(file, 2, &miss2);
  EXPECT_FALSE(miss2);
  EXPECT_EQ(frame, frame2);
  EXPECT_EQ(f.cache.cache_misses(), 1u);
  EXPECT_EQ(f.cache.cache_hits(), 1u);
}

TEST(PageCacheTest, ContentsAreDeterministicPerFileAndPage) {
  Fixture f;
  const FileId a = f.cache.CreateFile(4);
  const FileId b = f.cache.CreateFile(4);
  const uint32_t fa = f.cache.GetPage(a, 1);
  const uint32_t fb = f.cache.GetPage(b, 1);
  const uint32_t word_a = f.machine.memory().Read32(PhysAddr::FromFrame(fa, 8));
  const uint32_t word_b = f.machine.memory().Read32(PhysAddr::FromFrame(fb, 8));
  EXPECT_EQ(word_a, (a.value * 0x9E3779B9u) ^ (1u << 16) ^ 8u);
  EXPECT_EQ(word_b, (b.value * 0x9E3779B9u) ^ (1u << 16) ^ 8u);
  EXPECT_NE(word_a, word_b);
}

TEST(PageCacheTest, ReadBeyondEofThrows) {
  Fixture f;
  const FileId file = f.cache.CreateFile(4);
  EXPECT_THROW(f.cache.GetPage(file, 4), CheckFailure);
  EXPECT_THROW(f.cache.GetPage(FileId{999}, 0), CheckFailure);
}

TEST(PageCacheTest, DeleteReleasesFrames) {
  Fixture f;
  const uint32_t free_before = f.allocator.FreeCount();
  const FileId file = f.cache.CreateFile(6);
  for (uint32_t p = 0; p < 6; ++p) {
    f.cache.GetPage(file, p);
  }
  EXPECT_EQ(f.allocator.FreeCount(), free_before - 6);
  f.cache.DeleteFile(file);
  EXPECT_EQ(f.allocator.FreeCount(), free_before);
  EXPECT_THROW(f.cache.SizePages(file), CheckFailure);
}

TEST(PageCacheTest, EvictFileKeepsTheFileButDropsPages) {
  Fixture f;
  const FileId file = f.cache.CreateFile(6);
  f.cache.GetPage(file, 0);
  f.cache.GetPage(file, 1);
  EXPECT_EQ(f.cache.CachedPageCount(), 2u);
  f.cache.EvictFile(file);
  EXPECT_EQ(f.cache.CachedPageCount(), 0u);
  EXPECT_FALSE(f.cache.IsCached(file, 0));
  // Re-reading refills from "disk".
  bool miss = false;
  f.cache.GetPage(file, 0, &miss);
  EXPECT_TRUE(miss);
}

TEST(PageCacheTest, ReclaimSkipsSharedFrames) {
  Fixture f;
  const FileId file = f.cache.CreateFile(4);
  const uint32_t shared = f.cache.GetPage(file, 0);
  f.cache.GetPage(file, 1);
  f.allocator.AddRef(shared);  // "mapped" by someone
  EXPECT_EQ(f.cache.ReclaimPages(10), 1u);
  EXPECT_TRUE(f.cache.IsCached(file, 0));
  EXPECT_FALSE(f.cache.IsCached(file, 1));
  f.allocator.DecRef(shared);
}

TEST(PageCacheTest, LookupsChargeKernelTime) {
  Fixture f;
  const FileId file = f.cache.CreateFile(2);
  f.cache.GetPage(file, 0);
  const Cycles before = f.machine.Now();
  f.cache.GetPage(file, 0);  // hit still pays the lookup
  EXPECT_GT((f.machine.Now() - before).value, 0u);
}

}  // namespace
}  // namespace ppcmm
