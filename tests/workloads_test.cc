// Workload-driver tests: the X-server and multiuser workloads complete, clean up, and show
// the expected optimization sensitivity.

#include <gtest/gtest.h>

#include "src/workloads/multiuser.h"
#include "src/workloads/xserver.h"

namespace ppcmm {
namespace {

TEST(XServerWorkloadTest, RunsAndCleansUp) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  XServerConfig config;
  config.clients = 2;
  config.requests_per_client = 8;
  config.pages_per_draw = 16;
  const uint32_t free_before = sys.kernel().allocator().FreeCount();
  const XServerResult result = RunXServerWorkload(sys, config);
  EXPECT_EQ(result.draws, 16u);  // 100% draw rate
  EXPECT_GT(result.counters.syscalls, 0u);
  EXPECT_GT(result.counters.context_switches, 0u);
  EXPECT_EQ(sys.kernel().TaskCount(), 0u);
  // Pipes keep their buffers; everything else must be back.
  EXPECT_GE(sys.kernel().allocator().FreeCount() + 8, free_before);
}

TEST(XServerWorkloadTest, DrawPercentControlsFramebufferTraffic) {
  System never(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  System always(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  XServerConfig config;
  config.clients = 2;
  config.requests_per_client = 10;
  config.draw_percent = 0;
  const XServerResult none = RunXServerWorkload(never, config);
  config.draw_percent = 100;
  const XServerResult all = RunXServerWorkload(always, config);
  EXPECT_EQ(none.draws, 0u);
  EXPECT_EQ(all.draws, 20u);
  EXPECT_GT(all.counters.page_faults, none.counters.page_faults);
}

TEST(XServerWorkloadTest, FramebufferBatRemovesDrawTlbMisses) {
  OptimizationConfig bat = OptimizationConfig::AllOptimizations();
  bat.framebuffer_bat = true;
  System with_bat(MachineConfig::Ppc604(185), bat);
  System without(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  XServerConfig config;
  config.clients = 2;
  config.requests_per_client = 10;
  config.pages_per_draw = 48;
  const XServerResult rb = RunXServerWorkload(with_bat, config);
  const XServerResult rn = RunXServerWorkload(without, config);
  EXPECT_LT(rb.counters.dtlb_misses, rn.counters.dtlb_misses / 2);
  EXPECT_LT(rb.seconds, rn.seconds);
}

TEST(MultiuserWorkloadTest, RunsAllActivityKindsAndCleansUp) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  MultiuserConfig config;
  config.users = 4;  // with 4 users every round covers all four activity kinds
  config.rounds = 4;
  const KernelCostModel costs;
  const MultiuserResult result = RunMultiuserWorkload(sys, config);
  EXPECT_EQ(result.operations, 16u);
  EXPECT_GT(result.ops_per_second, 0.0);
  EXPECT_GT(result.counters.context_switches, 16u);  // compiles/shell fork and switch
  EXPECT_GT(result.counters.page_faults, 50u);
  EXPECT_GT(result.counters.idle_invocations, 0u);
  EXPECT_EQ(sys.kernel().TaskCount(), 0u);
  (void)costs;
}

TEST(MultiuserWorkloadTest, DeterministicForFixedSeed) {
  MultiuserConfig config;
  config.users = 2;
  config.rounds = 3;
  System a(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  System b(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  const MultiuserResult ra = RunMultiuserWorkload(a, config);
  const MultiuserResult rb = RunMultiuserWorkload(b, config);
  EXPECT_EQ(ra.counters.cycles, rb.counters.cycles);
  EXPECT_EQ(ra.counters.page_faults, rb.counters.page_faults);
}

TEST(MultiuserWorkloadTest, OptimizedKernelWins) {
  MultiuserConfig config;
  config.users = 3;
  config.rounds = 3;
  System base(MachineConfig::Ppc604(133), OptimizationConfig::Baseline());
  System opt(MachineConfig::Ppc604(133), OptimizationConfig::AllOptimizations());
  const MultiuserResult rb = RunMultiuserWorkload(base, config);
  const MultiuserResult ro = RunMultiuserWorkload(opt, config);
  EXPECT_GT(ro.ops_per_second, rb.ops_per_second);
}

}  // namespace
}  // namespace ppcmm
