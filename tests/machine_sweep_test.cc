// Cross-machine sanity sweeps: the same workload across every machine profile must scale
// sensibly with clock rate, cache size, and board quality.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/sim/rng.h"
#include "src/sim/sweep_runner.h"
#include "src/workloads/lmbench.h"

namespace ppcmm {
namespace {

struct MachineCase {
  std::string name;
  MachineConfig config;
};

std::vector<MachineCase> Machines() {
  return {
      {"603_133", MachineConfig::Ppc603(133)},
      {"603_180", MachineConfig::Ppc603(180)},
      {"604_133", MachineConfig::Ppc604(133)},
      {"604_185", MachineConfig::Ppc604(185)},
      {"604_200_fast", MachineConfig::Ppc604FastBoard(200)},
      {"604_185_l2", MachineConfig::Ppc604WithL2(185)},
  };
}

class MachineSweep : public ::testing::TestWithParam<int> {
 protected:
  MachineConfig Config() const { return Machines()[GetParam()].config; }
};

TEST_P(MachineSweep, LmBenchCorePointsAreSane) {
  System sys(Config(), OptimizationConfig::AllOptimizations());
  LmBenchParams params;
  params.syscall_iters = 100;
  params.ctxsw_passes = 15;
  params.pipe_latency_iters = 30;
  LmBench suite(sys, params);
  const double null_us = suite.NullSyscallUs();
  const double ctxsw_us = suite.ContextSwitchUs(2);
  const double pipe_us = suite.PipeLatencyUs();
  EXPECT_GT(null_us, 0.1);
  EXPECT_LT(null_us, 50);
  EXPECT_GT(ctxsw_us, 0.5);
  EXPECT_LT(ctxsw_us, 200);
  EXPECT_GT(pipe_us, ctxsw_us);  // a pipe hop includes a switch plus two syscalls
  EXPECT_LT(pipe_us, 500);
}

TEST_P(MachineSweep, KernelBootAndLifecycle) {
  System sys(Config(), OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  const TaskId t = kernel.CreateTask("boot");
  kernel.Exec(t, ExecImage{});
  kernel.SwitchTo(t);
  kernel.UserTouchRange(EffAddr(kUserDataBase), 8 * kPageSize, kPageSize, AccessKind::kStore);
  kernel.NullSyscall();
  kernel.Exit(t);
  EXPECT_EQ(kernel.TaskCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllMachines, MachineSweep, ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return Machines()[param_info.param].name;
                         });

TEST(MachineSweepRunnerTest, ParallelSweepMatchesSerialAcrossAllProfiles) {
  // The whole machine matrix through SweepRunner: per-profile cycle totals must be
  // byte-identical whether the sweep runs on one thread or a pool — each task owns its
  // System, nothing is shared.
  const std::vector<MachineCase> machines = Machines();
  const auto simulate = [&](size_t i) {
    System sys(machines[i].config, OptimizationConfig::AllOptimizations());
    LmBenchParams params;
    params.syscall_iters = 50;
    params.ctxsw_passes = 8;
    params.pipe_latency_iters = 15;
    LmBench suite(sys, params);
    suite.NullSyscallUs();
    suite.ContextSwitchUs(2);
    suite.PipeLatencyUs();
    return sys.counters().cycles;
  };
  const std::vector<uint64_t> serial = SweepRunner(1).Map(machines.size(), simulate);
  const std::vector<uint64_t> parallel = SweepRunner(4).Map(machines.size(), simulate);
  ASSERT_EQ(serial.size(), machines.size());
  EXPECT_EQ(serial, parallel);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_GT(serial[i], 0u) << machines[i].name;
  }
}

TEST(MachineSweepRunnerTest, SmpShootdownStormIsBitIdenticalAcrossRunsAndShards) {
  // The SMP interleaving model must stay deterministic under every sweep topology: the
  // same (seed, ncpus) cell produces bit-identical cycle totals and shootdown counters
  // whether simulated twice in-process, on a thread pool, or across forked --shards style
  // worker processes. This is the property that makes multi-CPU BENCH rows trustworthy.
  struct Cell {
    uint64_t seed;
    uint32_t ncpus;
  };
  const std::vector<Cell> cells = {{11, 1}, {11, 2}, {11, 4}, {12, 2}, {12, 4}, {13, 4}};
  const auto simulate = [&](size_t i) {
    MachineConfig config = MachineConfig::Ppc604(185);
    config.ncpus = cells[i].ncpus;
    System sys(config, OptimizationConfig::Baseline());
    Kernel& kernel = sys.kernel();
    std::vector<TaskId> tasks;
    for (uint32_t cpu = 0; cpu < cells[i].ncpus; ++cpu) {
      kernel.SwitchCpu(cpu);
      const TaskId t = kernel.CreateTask("cell");
      kernel.Exec(t, ExecImage{.text_pages = 4, .data_pages = 16, .stack_pages = 2});
      kernel.SwitchTo(t);
    }
    Rng rng(cells[i].seed);
    for (uint32_t round = 0; round < 40; ++round) {
      kernel.SwitchCpu(static_cast<uint32_t>(rng.NextBelow(cells[i].ncpus)));
      const uint32_t pages = 1 + static_cast<uint32_t>(rng.NextBelow(4));
      const uint32_t start = kernel.Mmap(pages);
      for (uint32_t p = 0; p < pages; ++p) {
        kernel.UserTouch(EffAddr::FromPage(start + p), AccessKind::kStore);
      }
      kernel.Munmap(start, pages);
    }
    // Fold the observable outcome into one word: the global clock, every per-CPU clock,
    // and the shootdown counters all feed the hash, so any nondeterminism surfaces.
    uint64_t digest = sys.counters().cycles;
    for (uint32_t cpu = 0; cpu < cells[i].ncpus; ++cpu) {
      digest = digest * 1099511628211ull ^ sys.machine().CpuCycles(cpu);
    }
    digest = digest * 1099511628211ull ^ sys.counters().tlb_shootdown_ipis;
    digest = digest * 1099511628211ull ^ sys.counters().tlb_shootdown_idle_skips;
    digest = digest * 1099511628211ull ^ sys.counters().tlb_shootdown_deferred_flushes;
    return digest;
  };
  const std::vector<uint64_t> once = SweepRunner(1).Map(cells.size(), simulate);
  const std::vector<uint64_t> again = SweepRunner(1).Map(cells.size(), simulate);
  const std::vector<uint64_t> pooled = SweepRunner(3).Map(cells.size(), simulate);
  const std::vector<uint64_t> sharded = SweepRunner(1).MapSharded(cells.size(), 3, simulate);
  EXPECT_EQ(once, again);
  EXPECT_EQ(once, pooled);
  EXPECT_EQ(once, sharded);
  // Width must matter: the same seed at different ncpus is a different machine.
  EXPECT_NE(once[0], once[1]);
  EXPECT_NE(once[1], once[2]);
}

TEST(MachineScalingTest, FasterClockIsFasterWallClock) {
  // Same machine, same work, higher clock: fewer microseconds (cycles identical).
  auto run = [](uint32_t mhz) {
    System sys(MachineConfig::Ppc604(mhz), OptimizationConfig::AllOptimizations());
    Kernel& kernel = sys.kernel();
    const TaskId t = kernel.CreateTask("t");
    kernel.Exec(t, ExecImage{});
    kernel.SwitchTo(t);
    for (int i = 0; i < 100; ++i) {
      kernel.NullSyscall();
    }
    return std::pair<double, uint64_t>(sys.ElapsedMicros(), sys.counters().cycles);
  };
  const auto [us_133, cycles_133] = run(133);
  const auto [us_200, cycles_200] = run(200);
  EXPECT_EQ(cycles_133, cycles_200);  // cycle-accurate: clock only changes wall time
  EXPECT_LT(us_200, us_133);
}

TEST(MachineScalingTest, FastBoardBeatsSlowBoardOnMissHeavyWork) {
  auto run = [](const MachineConfig& mc) {
    System sys(mc, OptimizationConfig::AllOptimizations());
    Kernel& kernel = sys.kernel();
    const TaskId t = kernel.CreateTask("t");
    kernel.Exec(t, ExecImage{.text_pages = 4, .data_pages = 512, .stack_pages = 2});
    kernel.SwitchTo(t);
    // A 400-page strided walk: misses everywhere, so memory timing dominates.
    for (uint32_t p = 0; p < 400; ++p) {
      kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize), AccessKind::kStore);
    }
    return sys.counters().cycles;
  };
  const uint64_t normal = run(MachineConfig::Ppc604(200));
  const uint64_t fast = run(MachineConfig::Ppc604FastBoard(200));
  EXPECT_LT(fast, normal);
}

}  // namespace
}  // namespace ppcmm
