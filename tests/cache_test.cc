// Cache model tests: hits, misses, LRU victimization, write-back accounting, cache-inhibited
// accesses, plus a parameterized sweep over the geometries the simulator uses.

#include <gtest/gtest.h>

#include "src/sim/cache.h"
#include "src/sim/check.h"
#include "src/sim/rng.h"

namespace ppcmm {
namespace {

MemoryTiming TestTiming() {
  return MemoryTiming{.line_fill_cycles = 30, .single_beat_cycles = 12, .writeback_cycles = 10};
}

CacheGeometry SmallGeometry() {
  // 2 sets x 2 ways x 32-byte lines = 128 bytes: easy to reason about.
  return CacheGeometry{.size_bytes = 128, .line_bytes = 32, .associativity = 2};
}

TEST(CacheTest, GeometryDerivation) {
  const CacheGeometry g{.size_bytes = 16 * 1024, .line_bytes = 32, .associativity = 4};
  EXPECT_EQ(g.NumLines(), 512u);
  EXPECT_EQ(g.NumSets(), 128u);
}

TEST(CacheTest, MissThenHit) {
  Cache cache("d", SmallGeometry(), TestTiming());
  const Cycles miss = cache.Access(PhysAddr(0), false);
  EXPECT_EQ(miss, Cycles(30));
  const Cycles hit = cache.Access(PhysAddr(4), false);  // same line
  EXPECT_EQ(hit, Cycles(1));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_TRUE(cache.Contains(PhysAddr(0)));
}

TEST(CacheTest, DistinctLinesInSameSetCoexistUpToAssociativity) {
  Cache cache("d", SmallGeometry(), TestTiming());
  // Set stride is 64 bytes (2 sets x 32B); addresses 0 and 64 share set 0.
  cache.Access(PhysAddr(0), false);
  cache.Access(PhysAddr(64), false);
  EXPECT_TRUE(cache.Contains(PhysAddr(0)));
  EXPECT_TRUE(cache.Contains(PhysAddr(64)));
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(CacheTest, LruVictimSelection) {
  Cache cache("d", SmallGeometry(), TestTiming());
  cache.Access(PhysAddr(0), false);    // way A
  cache.Access(PhysAddr(64), false);   // way B
  cache.Access(PhysAddr(0), false);    // refresh A; B is now LRU
  cache.Access(PhysAddr(128), false);  // evicts B
  EXPECT_TRUE(cache.Contains(PhysAddr(0)));
  EXPECT_FALSE(cache.Contains(PhysAddr(64)));
  EXPECT_TRUE(cache.Contains(PhysAddr(128)));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheTest, DirtyEvictionCostsWriteback) {
  Cache cache("d", SmallGeometry(), TestTiming());
  cache.Access(PhysAddr(0), true);   // dirty line in set 0
  cache.Access(PhysAddr(64), false);
  cache.Access(PhysAddr(0), false);  // make 64 LRU
  const Cycles evict_clean = cache.Access(PhysAddr(128), false);  // evicts clean 64
  EXPECT_EQ(evict_clean, Cycles(30));
  // Now evict the dirty line 0 (LRU after the last fill refreshed 128... order: refresh 0).
  cache.Access(PhysAddr(128), false);  // refresh 128, line 0 is LRU
  const Cycles evict_dirty = cache.Access(PhysAddr(192), false);
  EXPECT_EQ(evict_dirty, Cycles(40));  // fill + writeback
  EXPECT_EQ(cache.stats().dirty_writebacks, 1u);
}

TEST(CacheTest, WriteHitMarksDirty) {
  Cache cache("d", SmallGeometry(), TestTiming());
  cache.Access(PhysAddr(0), false);  // clean fill
  cache.Access(PhysAddr(8), true);   // write hit dirties it
  cache.Access(PhysAddr(64), false);
  cache.Access(PhysAddr(64), false);
  // Evict line 0 (LRU) — must pay the writeback.
  const Cycles cost = cache.Access(PhysAddr(128), false);
  EXPECT_EQ(cost, Cycles(40));
}

TEST(CacheTest, UncachedAccessNeitherAllocatesNorLooksUp) {
  Cache cache("d", SmallGeometry(), TestTiming());
  const Cycles cost = cache.AccessUncached(true);
  EXPECT_EQ(cost, Cycles(12));
  EXPECT_FALSE(cache.Contains(PhysAddr(0)));
  EXPECT_EQ(cache.stats().uncached_accesses, 1u);
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_EQ(cache.ValidLineCount(), 0u);
}

TEST(CacheTest, InvalidateAllEmptiesCache) {
  Cache cache("d", SmallGeometry(), TestTiming());
  cache.Access(PhysAddr(0), true);
  cache.Access(PhysAddr(64), false);
  EXPECT_EQ(cache.ValidLineCount(), 2u);
  cache.InvalidateAll();
  EXPECT_EQ(cache.ValidLineCount(), 0u);
  EXPECT_FALSE(cache.Contains(PhysAddr(0)));
}

TEST(CacheTest, RejectsBadGeometry) {
  EXPECT_THROW(Cache("x", CacheGeometry{.size_bytes = 100, .line_bytes = 24,
                                        .associativity = 2},
                     TestTiming()),
               CheckFailure);
  EXPECT_THROW(Cache("x", CacheGeometry{.size_bytes = 128, .line_bytes = 32,
                                        .associativity = 0},
                     TestTiming()),
               CheckFailure);
}

// Property sweep across the real geometries: counters are consistent and occupancy is
// bounded for any access pattern.
class CacheGeometrySweep : public ::testing::TestWithParam<CacheGeometry> {};

TEST_P(CacheGeometrySweep, CountersConsistentUnderRandomTraffic) {
  Cache cache("sweep", GetParam(), TestTiming());
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    cache.Access(PhysAddr(static_cast<uint32_t>(rng.NextBelow(1 << 22))), rng.Chance(1, 2));
  }
  const CacheStats& stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.accesses);
  EXPECT_EQ(stats.accesses, 20000u);
  EXPECT_LE(cache.ValidLineCount(), GetParam().NumLines());
  EXPECT_LE(stats.dirty_writebacks, stats.evictions);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

TEST_P(CacheGeometrySweep, SequentialRefillIsAllMissesThenAllHits) {
  const CacheGeometry g = GetParam();
  Cache cache("sweep", g, TestTiming());
  for (uint32_t a = 0; a < g.size_bytes; a += g.line_bytes) {
    cache.Access(PhysAddr(a), false);
  }
  EXPECT_EQ(cache.stats().misses, g.NumLines());
  EXPECT_EQ(cache.ValidLineCount(), g.NumLines());
  for (uint32_t a = 0; a < g.size_bytes; a += g.line_bytes) {
    cache.Access(PhysAddr(a), false);
  }
  EXPECT_EQ(cache.stats().hits, g.NumLines());
}

INSTANTIATE_TEST_SUITE_P(
    RealGeometries, CacheGeometrySweep,
    ::testing::Values(
        CacheGeometry{.size_bytes = 8 * 1024, .line_bytes = 32, .associativity = 2},   // 603
        CacheGeometry{.size_bytes = 16 * 1024, .line_bytes = 32, .associativity = 4},  // 604
        CacheGeometry{.size_bytes = 4 * 1024, .line_bytes = 32, .associativity = 1},
        CacheGeometry{.size_bytes = 32 * 1024, .line_bytes = 64, .associativity = 8}));

}  // namespace
}  // namespace ppcmm
