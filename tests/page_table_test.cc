// Two-level page table tests: the three-load walk, map/unmap/update, directory allocation,
// and iteration.

#include <gtest/gtest.h>

#include <map>

#include "src/pagetable/page_table.h"
#include "src/sim/check.h"
#include "src/sim/rng.h"

namespace ppcmm {
namespace {

struct Fixture {
  Fixture() : memory(4 * 1024 * 1024), alloc(0, 1024) {}
  PhysicalMemory memory;
  PageAllocator alloc;
};

LinuxPte MakePte(uint32_t frame, bool writable = true) {
  return LinuxPte{.present = true,
                  .writable = writable,
                  .user = true,
                  .accessed = false,
                  .dirty = false,
                  .cache_inhibited = false,
                  .cow = false,
                  .frame = frame};
}

TEST(LinuxPteTest, EncodeDecodeRoundTrip) {
  LinuxPte pte{.present = true,
               .writable = false,
               .user = true,
               .accessed = true,
               .dirty = false,
               .cache_inhibited = true,
               .cow = true,
               .frame = 0xABCDE};
  EXPECT_EQ(LinuxPte::Decode(pte.Encode()), pte);
  EXPECT_EQ(LinuxPte::Decode(0).present, false);
}

TEST(PageTableTest, PgdAllocatedOnConstruction) {
  Fixture f;
  const uint32_t free_before = f.alloc.FreeCount();
  PageTable pt(f.alloc, f.memory);
  EXPECT_EQ(f.alloc.FreeCount(), free_before - 1);
  EXPECT_TRUE(f.alloc.IsAllocated(pt.pgd_frame()));
}

TEST(PageTableTest, MapLookupUnmap) {
  Fixture f;
  PageTable pt(f.alloc, f.memory);
  const EffAddr ea(0x10005000);
  pt.Map(ea, MakePte(0x77));
  const auto found = pt.LookupQuiet(ea);
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(found->present);
  EXPECT_EQ(found->frame, 0x77u);
  EXPECT_EQ(pt.PresentCount(), 1u);

  const auto old = pt.Unmap(ea);
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(old->frame, 0x77u);
  EXPECT_EQ(pt.PresentCount(), 0u);
  const auto gone = pt.LookupQuiet(ea);
  EXPECT_TRUE(!gone.has_value() || !gone->present);
}

TEST(PageTableTest, LookupChargesTwoLoads) {
  Fixture f;
  PageTable pt(f.alloc, f.memory);
  pt.Map(EffAddr(0x10000000), MakePte(1));
  NullMemCharger charger;
  pt.Lookup(EffAddr(0x10000000), charger);
  EXPECT_EQ(charger.refs(), 2u);  // PGD entry + PTE entry; the task-struct load is the caller's
  // A region with no PTE page costs only the PGD probe.
  NullMemCharger charger2;
  EXPECT_FALSE(pt.Lookup(EffAddr(0x50000000), charger2).has_value());
  EXPECT_EQ(charger2.refs(), 1u);
}

TEST(PageTableTest, PtePageAllocatedPerFourMegabytes) {
  Fixture f;
  PageTable pt(f.alloc, f.memory);
  const uint32_t before = f.alloc.FreeCount();
  pt.Map(EffAddr(0x10000000), MakePte(1));
  pt.Map(EffAddr(0x10001000), MakePte(2));  // same 4 MB region: no new directory
  EXPECT_EQ(f.alloc.FreeCount(), before - 1);
  pt.Map(EffAddr(0x10400000), MakePte(3));  // next region: one more
  EXPECT_EQ(f.alloc.FreeCount(), before - 2);
}

TEST(PageTableTest, DestructorReleasesDirectories) {
  Fixture f;
  const uint32_t before = f.alloc.FreeCount();
  {
    PageTable pt(f.alloc, f.memory);
    pt.Map(EffAddr(0x10000000), MakePte(1));
    pt.Map(EffAddr(0x70000000), MakePte(2));
  }
  EXPECT_EQ(f.alloc.FreeCount(), before);
}

TEST(PageTableTest, UpdateRewritesFlags) {
  Fixture f;
  PageTable pt(f.alloc, f.memory);
  const EffAddr ea(0x20000000);
  pt.Map(ea, MakePte(5, /*writable=*/true));
  pt.Update(ea, [](LinuxPte& pte) {
    pte.writable = false;
    pte.cow = true;
  });
  const auto pte = pt.LookupQuiet(ea);
  ASSERT_TRUE(pte.has_value());
  EXPECT_FALSE(pte->writable);
  EXPECT_TRUE(pte->cow);
  EXPECT_EQ(pte->frame, 5u);
}

TEST(PageTableTest, UpdateMisuseThrows) {
  Fixture f;
  PageTable pt(f.alloc, f.memory);
  EXPECT_THROW(pt.Update(EffAddr(0x30000000), [](LinuxPte&) {}), CheckFailure);
  pt.Map(EffAddr(0x30000000), MakePte(1));
  EXPECT_THROW(pt.Update(EffAddr(0x30001000), [](LinuxPte&) {}), CheckFailure);
  EXPECT_THROW(pt.Update(EffAddr(0x30000000), [](LinuxPte& pte) { pte.present = false; }),
               CheckFailure);
  EXPECT_THROW(pt.Map(EffAddr(0x30002000), LinuxPte{}), CheckFailure);  // non-present map
}

TEST(PageTableTest, ForEachPresentVisitsExactlyTheMappedPages) {
  Fixture f;
  PageTable pt(f.alloc, f.memory);
  std::map<uint32_t, uint32_t> expected;  // eff page -> frame
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const uint32_t page = static_cast<uint32_t>(rng.NextBelow(1 << 20));
    const uint32_t frame = static_cast<uint32_t>(100 + i);
    pt.Map(EffAddr::FromPage(page), MakePte(frame));
    expected[page] = frame;
  }
  std::map<uint32_t, uint32_t> seen;
  pt.ForEachPresent([&](EffAddr ea, const LinuxPte& pte) {
    EXPECT_EQ(ea.PageOffset(), 0u);
    seen[ea.EffPageNumber()] = pte.frame;
  });
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(pt.PresentCount(), expected.size());
}

TEST(PageTableTest, RemapReplacesWithoutLeakingPresentCount) {
  Fixture f;
  PageTable pt(f.alloc, f.memory);
  pt.Map(EffAddr(0x10000000), MakePte(1));
  pt.Map(EffAddr(0x10000000), MakePte(2));
  EXPECT_EQ(pt.PresentCount(), 1u);
  EXPECT_EQ(pt.LookupQuiet(EffAddr(0x10000000))->frame, 2u);
}

TEST(PageTableTest, UnmapAbsentReturnsNothing) {
  Fixture f;
  PageTable pt(f.alloc, f.memory);
  EXPECT_FALSE(pt.Unmap(EffAddr(0x10000000)).has_value());
  pt.Map(EffAddr(0x10000000), MakePte(1));
  EXPECT_FALSE(pt.Unmap(EffAddr(0x10001000)).has_value());
}

}  // namespace
}  // namespace ppcmm
