// TimelineSampler tests: tick-hook driven sampling, period rate-limiting, and exports.

#include <gtest/gtest.h>

#include <string>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/obs/timeline.h"

namespace ppcmm {
namespace {

// Churns tasks so the scheduler ticks many times and cycles accumulate.
void Churn(System& sys, uint32_t rounds) {
  Kernel& kernel = sys.kernel();
  const TaskId a = kernel.CreateTask("a");
  const TaskId b = kernel.CreateTask("b");
  kernel.Exec(a, ExecImage{.text_pages = 4, .data_pages = 64, .stack_pages = 4});
  kernel.Exec(b, ExecImage{.text_pages = 4, .data_pages = 64, .stack_pages = 4});
  for (uint32_t round = 0; round < rounds; ++round) {
    kernel.SwitchTo(round % 2 == 0 ? a : b);
    for (uint32_t i = 0; i < 4; ++i) {
      kernel.UserTouch(EffAddr(kUserDataBase + ((round * 4 + i) % 64) * kPageSize),
                       AccessKind::kStore);
    }
  }
  kernel.RunIdle(Cycles(1000));
}

TEST(TimelineTest, InstalledSamplerCollectsPeriodicSamples) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  TimelineSampler sampler(sys, Cycles(500));
  sampler.Install();
  Churn(sys, 40);
  ASSERT_GE(sampler.samples().size(), 2u);

  // Samples are strictly ordered and at least one period apart.
  const auto& samples = sampler.samples();
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].cycle, samples[i - 1].cycle + 500);
  }
  // Cumulative counters never decrease, and the gauges are sane.
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].context_switches, samples[i - 1].context_switches);
    EXPECT_GE(samples[i].page_faults, samples[i - 1].page_faults);
  }
  for (const TimelineSample& s : samples) {
    EXPECT_GE(s.htab_utilization, 0.0);
    EXPECT_LE(s.htab_utilization, 1.0);
    EXPECT_GE(s.htab_valid, s.htab_zombies);
  }
}

TEST(TimelineTest, UninstallStopsSampling) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  TimelineSampler sampler(sys, Cycles(100));
  sampler.Install();
  Churn(sys, 10);
  sampler.Uninstall();
  const size_t frozen = sampler.samples().size();
  EXPECT_GT(frozen, 0u);
  Churn(sys, 10);
  EXPECT_EQ(sampler.samples().size(), frozen);
}

TEST(TimelineTest, SampleNowIsUnconditional) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  TimelineSampler sampler(sys, Cycles(1'000'000'000));
  sampler.SampleNow();
  sampler.SampleNow();
  EXPECT_EQ(sampler.samples().size(), 2u);
  // Tick respects the (enormous) period even right after SampleNow.
  sampler.Tick();
  EXPECT_EQ(sampler.samples().size(), 2u);
}

TEST(TimelineTest, ExportsRoundTrip) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  TimelineSampler sampler(sys, Cycles(500));
  sampler.Install();
  Churn(sys, 30);

  std::string error;
  const auto parsed = JsonValue::Parse(sampler.ToJson().Serialize(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_DOUBLE_EQ(parsed->Find("period_cycles")->AsNumber(), 500.0);
  const JsonValue* rows = parsed->Find("samples");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->Items().size(), sampler.samples().size());
  EXPECT_DOUBLE_EQ(rows->Items()[0].Find("cycle")->AsNumber(),
                   static_cast<double>(sampler.samples()[0].cycle));

  const std::string csv = sampler.ToCsv();
  EXPECT_EQ(csv.rfind("cycle,htab_utilization,htab_valid,htab_zombies,", 0), 0u);
  size_t rows_in_csv = 0;
  for (const char c : csv) {
    rows_in_csv += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(rows_in_csv, 1 + sampler.samples().size());
}

}  // namespace
}  // namespace ppcmm
