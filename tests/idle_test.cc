// Idle task tests: zombie HTAB reclaim (§7) and the three page-clearing policies (§9),
// including the cache-pollution behaviour that made the cached variant a pessimization.

#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/kernel/layout.h"

namespace ppcmm {
namespace {

TaskId SpawnStd(Kernel& kernel, const char* name) {
  const TaskId id = kernel.CreateTask(name);
  kernel.Exec(id, ExecImage{.text_pages = 8, .data_pages = 64, .stack_pages = 4});
  kernel.SwitchTo(id);
  return id;
}

// Produces a pile of zombies: map+touch+munmap above the lazy cutoff, repeatedly.
void MakeZombies(Kernel& kernel, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    const uint32_t start = kernel.Mmap(30);
    for (uint32_t i = 0; i < 30; ++i) {
      kernel.UserTouch(EffAddr::FromPage(start + i), AccessKind::kStore);
    }
    kernel.Munmap(start, 30);
  }
}

TEST(IdleTest, ReclaimSweepsZombies) {
  OptimizationConfig config = OptimizationConfig::OnlyIdleReclaim();
  System sys(MachineConfig::Ppc604(185), config);
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel, "t");
  MakeZombies(kernel, 4);
  const uint32_t valid_before = sys.mmu().htab().ValidCount();
  const uint32_t live_before = sys.mmu().htab().LiveCount(kernel.vsids());
  ASSERT_GT(valid_before, live_before) << "test needs zombies to reclaim";

  // Enough idle budget to sweep the whole table.
  kernel.RunIdle(Cycles(2'000'000));
  EXPECT_GT(sys.counters().zombies_reclaimed, 0u);
  EXPECT_EQ(sys.mmu().htab().ValidCount(), sys.mmu().htab().LiveCount(kernel.vsids()));
}

TEST(IdleTest, ReclaimEnablesFreeSlotReloads) {
  // §7: with reclaim, "the hash table reload code was usually able to find an empty TLB
  // entry and was able to avoid replacing valid PTEs" — evict ratio drops.
  auto churn = [](System& sys) {
    Kernel& kernel = sys.kernel();
    SpawnStd(kernel, "t");
    for (int round = 0; round < 60; ++round) {
      const uint32_t start = kernel.Mmap(64);
      for (uint32_t i = 0; i < 64; ++i) {
        kernel.UserTouch(EffAddr::FromPage(start + i), AccessKind::kStore);
      }
      kernel.Munmap(start, 64);
      // I/O pause: the idle task gets to run, as it would between compiles.
      kernel.RunIdle(Cycles(40'000));
    }
    return sys.counters().EvictToReloadRatio();
  };

  OptimizationConfig no_reclaim = OptimizationConfig::OnlyLazyFlush(20);
  OptimizationConfig with_reclaim = OptimizationConfig::OnlyIdleReclaim();
  // Shrink the HTAB so the zombie problem bites within a small test: 64 PTEGs = 512 PTEs.
  MachineConfig mc = MachineConfig::Ppc604(185);
  mc.htab_ptegs = 64;
  System sys_no(mc, no_reclaim);
  System sys_yes(mc, with_reclaim);
  const double ratio_no = churn(sys_no);
  const double ratio_yes = churn(sys_yes);
  EXPECT_GT(ratio_no, ratio_yes);
  EXPECT_GT(sys_yes.counters().zombies_reclaimed, 0u);
  EXPECT_GT(sys_yes.counters().htab_zombie_overwrites + sys_yes.counters().zombies_reclaimed,
            0u);
}

TEST(IdleTest, PrezeroedListFeedsGetFreePage) {
  System sys(MachineConfig::Ppc604(185),
             OptimizationConfig::OnlyIdleZero(IdleZeroPolicy::kUncachedWithList));
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel, "t");
  kernel.RunIdle(Cycles(500'000));
  EXPECT_GT(kernel.mem().PrezeroedCount(), 0u);
  EXPECT_GT(sys.counters().pages_zeroed_in_idle, 0u);

  const HwCounters before = sys.counters();
  kernel.UserTouchRange(EffAddr(kUserDataBase), 8 * kPageSize, kPageSize, AccessKind::kStore);
  const HwCounters delta = sys.counters().Diff(before);
  EXPECT_EQ(delta.prezeroed_page_hits, 8u);
  EXPECT_EQ(delta.pages_zeroed_on_demand, 0u);
}

TEST(IdleTest, PrezeroedPagesAreActuallyZero) {
  System sys(MachineConfig::Ppc604(185),
             OptimizationConfig::OnlyIdleZero(IdleZeroPolicy::kUncachedWithList));
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel, "t");
  kernel.RunIdle(Cycles(300'000));
  kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kLoad);
  const auto pte = kernel.task(t).mm->page_table->LookupQuiet(EffAddr(kUserDataBase));
  ASSERT_TRUE(pte.has_value());
  EXPECT_TRUE(sys.machine().memory().FrameIsZero(pte->frame));
}

TEST(IdleTest, UncachedNoListDoesNotFeedAllocatorOrPolluteCache) {
  System sys(MachineConfig::Ppc604(185),
             OptimizationConfig::OnlyIdleZero(IdleZeroPolicy::kUncachedNoList));
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel, "t");
  const uint32_t dcache_lines_before = sys.machine().dcache().ValidLineCount();
  kernel.RunIdle(Cycles(500'000));
  EXPECT_GT(sys.counters().pages_zeroed_in_idle, 0u);
  EXPECT_EQ(kernel.mem().PrezeroedCount(), 0u);
  // Uncached zeroing must not have grown the data cache's contents beyond the few lines the
  // idle loop's own page-table reloads bring in (a zeroed page would be 128 lines).
  EXPECT_LE(sys.machine().dcache().ValidLineCount(), dcache_lines_before + 32);

  const HwCounters before = sys.counters();
  kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
  EXPECT_EQ(sys.counters().Diff(before).prezeroed_page_hits, 0u);
}

TEST(IdleTest, CachedZeroingPollutesTheDataCache) {
  System sys_cached(MachineConfig::Ppc604(185),
                    OptimizationConfig::OnlyIdleZero(IdleZeroPolicy::kCached));
  System sys_uncached(MachineConfig::Ppc604(185),
                      OptimizationConfig::OnlyIdleZero(IdleZeroPolicy::kUncachedWithList));

  for (System* sys : {&sys_cached, &sys_uncached}) {
    Kernel& kernel = sys->kernel();
    SpawnStd(kernel, "t");
    // Build a warm user working set, then let the idle task zero pages.
    kernel.UserTouchRange(EffAddr(kUserDataBase), 8 * kPageSize, 32, AccessKind::kStore);
    const HwCounters warm = sys->counters();
    kernel.UserTouchRange(EffAddr(kUserDataBase), 8 * kPageSize, 32, AccessKind::kLoad);
    const uint64_t warm_misses = sys->machine().dcache().stats().misses;
    kernel.RunIdle(Cycles(400'000));
    // Re-walk the working set: the cached zeroer evicted it, the uncached one did not.
    kernel.UserTouchRange(EffAddr(kUserDataBase), 8 * kPageSize, 32, AccessKind::kLoad);
    (void)warm;
    (void)warm_misses;
  }
  // Compare the post-idle rewalk misses via total dcache misses: the cached variant must
  // have strictly more.
  EXPECT_GT(sys_cached.machine().dcache().stats().misses,
            sys_uncached.machine().dcache().stats().misses);
}

TEST(IdleTest, IdleZeroRespectsListCapAndMemoryHeadroom) {
  OptimizationConfig config = OptimizationConfig::OnlyIdleZero(IdleZeroPolicy::kUncachedWithList);
  config.prezero_list_cap = 5;
  System sys(MachineConfig::Ppc604(185), config);
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel, "t");
  kernel.RunIdle(Cycles(2'000'000));
  EXPECT_LE(kernel.mem().PrezeroedCount(), 5u);
}

TEST(IdleTest, IdleOffDoesNothingButSpin) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel, "t");
  const Cycles before = sys.machine().Now();
  kernel.RunIdle(Cycles(10'000));
  EXPECT_GE((sys.machine().Now() - before).value, 10'000u);
  EXPECT_EQ(sys.counters().pages_zeroed_in_idle, 0u);
  EXPECT_EQ(sys.counters().zombies_reclaimed, 0u);
  EXPECT_EQ(sys.counters().idle_invocations, 1u);
}

}  // namespace
}  // namespace ppcmm
