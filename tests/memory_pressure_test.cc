// Memory-pressure tests: the page-cache reclaim path (a kswapd in miniature) and the cache
// preload extension (§10.2).

#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/sim/check.h"

namespace ppcmm {
namespace {

TaskId SpawnStd(Kernel& kernel) {
  const TaskId id = kernel.CreateTask("t");
  kernel.Exec(id, ExecImage{.text_pages = 4, .data_pages = 4096, .stack_pages = 2});
  kernel.SwitchTo(id);
  return id;
}

TEST(MemoryPressureTest, PageCacheShrinksInsteadOfOom) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel);

  // Fill most of RAM with page-cache contents: a file nearly as big as the pool.
  const uint32_t pool = kernel.allocator().FreeCount();
  const uint32_t file_pages = pool - 256;  // leave a little slack
  const FileId big = kernel.page_cache().CreateFile(file_pages);
  const EffAddr buf(kUserDataBase);
  for (uint32_t page = 0; page < file_pages; ++page) {
    kernel.FileRead(big, page * kPageSize, 64, buf);
  }
  ASSERT_LT(kernel.allocator().FreeCount(), 256u + 64u);
  const uint32_t cached_before = kernel.page_cache().CachedPageCount();

  // Now demand hundreds of anonymous pages: without reclaim this would be fatal.
  kernel.UserTouchRange(EffAddr(kUserDataBase + 0x100000), 600 * kPageSize, kPageSize,
                        AccessKind::kStore);
  EXPECT_LT(kernel.page_cache().CachedPageCount(), cached_before);
}

TEST(MemoryPressureTest, MappedPagesSurviveReclaim) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel);
  const FileId file = kernel.page_cache().CreateFile(8);
  const uint32_t start = kernel.Mmap(8, MmapOptions{.file = file, .writable = false});
  kernel.UserTouch(EffAddr::FromPage(start + 3), AccessKind::kLoad);  // maps page 3 (ref 2)
  kernel.UserTouch(EffAddr::FromPage(start + 5), AccessKind::kLoad);
  bool miss = false;
  kernel.page_cache().GetPage(file, 0, &miss);  // cached, unmapped (ref 1)

  const uint32_t reclaimed = kernel.page_cache().ReclaimPages(1000);
  EXPECT_GE(reclaimed, 1u);                             // the unmapped page went
  EXPECT_TRUE(kernel.page_cache().IsCached(file, 3));   // mapped pages stayed
  EXPECT_TRUE(kernel.page_cache().IsCached(file, 5));
  EXPECT_FALSE(kernel.page_cache().IsCached(file, 0));
}

TEST(MemoryPressureTest, ReclaimReturnsZeroWhenNothingEvictable) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  EXPECT_EQ(kernel.page_cache().ReclaimPages(10), 0u);
}

TEST(CachePreloadTest, PrefetchInstallsLineCheaply) {
  Machine machine(MachineConfig::Ppc604(185));
  const PhysAddr pa(0x4000);
  EXPECT_FALSE(machine.dcache().Contains(pa));
  const Cycles before = machine.Now();
  machine.PrefetchData(pa);
  EXPECT_LE((machine.Now() - before).value, 2u);  // overlapped fill: issue cost only
  EXPECT_TRUE(machine.dcache().Contains(pa));
  // The following demand access is a hit.
  machine.TouchData(pa, false);
  EXPECT_EQ(machine.dcache().stats().hits, 1u);
  EXPECT_EQ(machine.dcache().stats().prefetches, 1u);
}

TEST(CachePreloadTest, PreloadHintsSpeedColdContextSwitches) {
  OptimizationConfig plain = OptimizationConfig::AllOptimizations();
  OptimizationConfig hinted = OptimizationConfig::AllOptimizations();
  hinted.cache_preload_hints = true;
  double times[2];
  int index = 0;
  for (const OptimizationConfig* config : {&plain, &hinted}) {
    System sys(MachineConfig::Ppc604(185), *config);
    Kernel& kernel = sys.kernel();
    const TaskId a = kernel.CreateTask("a");
    const TaskId b = kernel.CreateTask("b");
    kernel.Exec(a, ExecImage{});
    kernel.Exec(b, ExecImage{});
    kernel.SwitchTo(a);
    // Evict the task structs between switches so every restore is cold — the §10.2 case.
    times[index++] = sys.TimeMicros([&] {
      for (int i = 0; i < 40; ++i) {
        sys.machine().dcache().InvalidateAll();
        kernel.SwitchTo(i % 2 == 0 ? b : a);
      }
    });
  }
  EXPECT_LT(times[1], times[0]);
}

TEST(CachePreloadTest, PrefetchOfResidentLineIsAlmostFree) {
  Machine machine(MachineConfig::Ppc604(185));
  const PhysAddr pa(0x8000);
  machine.TouchData(pa, false);
  const Cycles before = machine.Now();
  machine.PrefetchData(pa);
  EXPECT_EQ((machine.Now() - before).value, 1u);
}

}  // namespace
}  // namespace ppcmm
