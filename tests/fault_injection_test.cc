// Fault-injection tests: every fault class has a graceful-degradation story — the kernel
// either recovers (out-of-memory) or stays fully coherent under the hostile event, as
// certified by the coherence auditor.

#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/sim/check.h"
#include "src/verify/coherence_auditor.h"
#include "src/sim/fault_injector.h"

namespace ppcmm {
namespace {

// ---- FaultInjector unit behaviour ----

TEST(FaultInjectorTest, DisabledClassesNeverFire) {
  FaultInjector injector(1);
  for (uint32_t i = 0; i < kNumFaultClasses; ++i) {
    const auto cls = static_cast<FaultClass>(i);
    for (int poll = 0; poll < 100; ++poll) {
      EXPECT_FALSE(injector.ShouldFire(cls));
    }
    EXPECT_EQ(injector.Fires(cls), 0u);
    EXPECT_EQ(injector.Polls(cls), 100u);
  }
  EXPECT_EQ(injector.TotalFires(), 0u);
}

TEST(FaultInjectorTest, RateOneAlwaysFiresAndDisableStops) {
  FaultInjector injector(1);
  injector.Enable(FaultClass::kSpuriousTlbFlush, 1);
  for (int poll = 0; poll < 10; ++poll) {
    EXPECT_TRUE(injector.ShouldFire(FaultClass::kSpuriousTlbFlush));
  }
  injector.Disable(FaultClass::kSpuriousTlbFlush);
  EXPECT_FALSE(injector.ShouldFire(FaultClass::kSpuriousTlbFlush));
  EXPECT_EQ(injector.Fires(FaultClass::kSpuriousTlbFlush), 10u);
}

TEST(FaultInjectorTest, ArmOnceFiresExactlyOnceAfterCountdown) {
  FaultInjector injector(1);
  injector.ArmOnce(FaultClass::kPageAllocExhaustion, /*after_polls=*/2);
  EXPECT_FALSE(injector.ShouldFire(FaultClass::kPageAllocExhaustion));
  EXPECT_FALSE(injector.ShouldFire(FaultClass::kPageAllocExhaustion));
  EXPECT_TRUE(injector.ShouldFire(FaultClass::kPageAllocExhaustion));
  EXPECT_FALSE(injector.ShouldFire(FaultClass::kPageAllocExhaustion));
  EXPECT_EQ(injector.Fires(FaultClass::kPageAllocExhaustion), 1u);
}

TEST(FaultInjectorTest, SameSeedSameFireSequence) {
  FaultInjector a(99), b(99);
  a.Enable(FaultClass::kHtabEvictionStorm, 7);
  b.Enable(FaultClass::kHtabEvictionStorm, 7);
  for (int poll = 0; poll < 500; ++poll) {
    EXPECT_EQ(a.ShouldFire(FaultClass::kHtabEvictionStorm),
              b.ShouldFire(FaultClass::kHtabEvictionStorm));
  }
}

TEST(FaultInjectorTest, ClassNamesAreStable) {
  EXPECT_STREQ(FaultClassName(FaultClass::kPageAllocExhaustion), "page-alloc-exhaustion");
  EXPECT_STREQ(FaultClassName(FaultClass::kHtabEvictionStorm), "htab-eviction-storm");
  EXPECT_STREQ(FaultClassName(FaultClass::kSpuriousTlbFlush), "spurious-tlb-flush");
  EXPECT_STREQ(FaultClassName(FaultClass::kVsidWrap), "vsid-wrap");
  EXPECT_STREQ(FaultClassName(FaultClass::kZombieFlood), "zombie-flood");
}

// ---- kernel-level graceful degradation, one test per class ----

class FaultInjectionTest : public ::testing::Test {
 protected:
  static System MakeSystem(const OptimizationConfig& config) {
    return System(MachineConfig::Ppc604(185), config);
  }

  // A task with the default image, switched in.
  static TaskId Boot(Kernel& kernel) {
    const TaskId id = kernel.CreateTask("victim");
    kernel.Exec(id, ExecImage{});
    kernel.SwitchTo(id);
    return id;
  }
};

TEST_F(FaultInjectionTest, PageAllocExhaustionIsRecoverable) {
  System sys = MakeSystem(OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  Boot(kernel);
  CoherenceAuditor auditor(kernel);

  FaultInjector injector(3);
  kernel.SetFaultInjector(&injector);
  injector.ArmOnce(FaultClass::kPageAllocExhaustion);

  const EffAddr ea(kUserDataBase + 2 * kPageSize);
  EXPECT_THROW(kernel.UserTouch(ea, AccessKind::kStore), OutOfMemoryError);
  // Nothing half-installed: the audit passes and the same touch now succeeds.
  auditor.Audit();
  kernel.UserTouch(ea, AccessKind::kStore);
  auditor.Audit();
  EXPECT_EQ(injector.Fires(FaultClass::kPageAllocExhaustion), 1u);
  kernel.SetFaultInjector(nullptr);
}

TEST_F(FaultInjectionTest, GenuinePoolExhaustionThrowsAndRecovers) {
  // 8 MB of RAM: 2 MB kernel + 2 MB framebuffer leave 1024 allocatable frames. No injection
  // here — the allocator genuinely runs dry.
  MachineConfig machine = MachineConfig::Ppc604(185);
  machine.ram_bytes = 8ull * 1024 * 1024;
  System sys(machine, OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  Boot(kernel);
  CoherenceAuditor auditor(kernel);

  std::vector<std::pair<uint32_t, uint32_t>> maps;
  bool exhausted = false;
  try {
    for (int i = 0; i < 64 && !exhausted; ++i) {
      const uint32_t pages = 32;
      const uint32_t start = kernel.Mmap(pages);
      maps.emplace_back(start, pages);
      for (uint32_t p = 0; p < pages; ++p) {
        kernel.UserTouch(EffAddr::FromPage(start + p), AccessKind::kStore);
      }
    }
  } catch (const OutOfMemoryError&) {
    exhausted = true;
  }
  ASSERT_TRUE(exhausted) << "1024 frames should not fit 2048 user pages";
  auditor.Audit();  // coherent even mid-exhaustion

  // Releasing memory makes the kernel fully operational again.
  for (const auto& [start, pages] : maps) {
    kernel.Munmap(start, pages);
  }
  kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
  auditor.Audit();
}

TEST_F(FaultInjectionTest, HtabEvictionStormStaysCoherent) {
  System sys = MakeSystem(OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  Boot(kernel);
  CoherenceAuditor auditor(kernel);

  FaultInjector injector(5);
  kernel.SetFaultInjector(&injector);
  injector.Enable(FaultClass::kHtabEvictionStorm, 3);

  const uint32_t start = kernel.Mmap(16);
  for (int round = 0; round < 8; ++round) {
    for (uint32_t p = 0; p < 16; ++p) {
      kernel.UserTouch(EffAddr::FromPage(start + p), AccessKind::kStore);
      kernel.UserTouch(EffAddr::FromPage(start + p, 64), AccessKind::kLoad);
    }
    auditor.Audit();
  }
  EXPECT_GT(injector.Fires(FaultClass::kHtabEvictionStorm), 0u);
  kernel.SetFaultInjector(nullptr);
}

TEST_F(FaultInjectionTest, SpuriousTlbFlushStaysCoherent) {
  System sys = MakeSystem(OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId a = Boot(kernel);
  const TaskId b = kernel.Fork(a);
  CoherenceAuditor auditor(kernel);

  FaultInjector injector(7);
  kernel.SetFaultInjector(&injector);
  injector.Enable(FaultClass::kSpuriousTlbFlush, 4);

  for (int round = 0; round < 6; ++round) {
    kernel.SwitchTo(round % 2 == 0 ? a : b);
    for (uint32_t p = 0; p < 8; ++p) {
      kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize + round), AccessKind::kStore);
    }
    auditor.Audit();
  }
  EXPECT_GT(injector.Fires(FaultClass::kSpuriousTlbFlush), 0u);
  kernel.SetFaultInjector(nullptr);
}

TEST_F(FaultInjectionTest, VsidWrapReassignsEveryLiveContext) {
  System sys = MakeSystem(OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId a = Boot(kernel);
  const TaskId b = kernel.Fork(a);
  CoherenceAuditor auditor(kernel);
  for (uint32_t p = 0; p < 4; ++p) {
    kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize), AccessKind::kStore);
  }
  const ContextId ctx_a = kernel.task(a).mm->context;
  const ContextId ctx_b = kernel.task(b).mm->context;

  FaultInjector injector(11);
  kernel.SetFaultInjector(&injector);
  injector.ArmOnce(FaultClass::kVsidWrap);
  // The next context allocation trips the armed wrap: the counter jumps to the end of the
  // epoch and the rollover reassigns every live context before the allocation returns.
  const TaskId c = kernel.CreateTask("post-wrap");
  EXPECT_EQ(kernel.counters().vsid_epoch_rollovers, 1u);
  EXPECT_NE(kernel.task(a).mm->context, ctx_a);
  EXPECT_NE(kernel.task(b).mm->context, ctx_b);
  EXPECT_GE(kernel.vsids().CurrentEpoch(), 1u);

  // All three tasks keep working, and the world is coherent.
  auditor.Audit();
  kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
  kernel.Exec(c, ExecImage{});
  kernel.SwitchTo(c);
  kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
  auditor.Audit();
  kernel.SetFaultInjector(nullptr);
}

TEST_F(FaultInjectionTest, ZombieFloodIsHarmlessAndReclaimable) {
  OptimizationConfig config = OptimizationConfig::AllOptimizations();
  config.idle_zombie_reclaim = true;
  System sys = MakeSystem(config);
  Kernel& kernel = sys.kernel();
  const TaskId a = Boot(kernel);
  const TaskId b = kernel.Fork(a);
  CoherenceAuditor auditor(kernel);

  FaultInjector injector(13);
  kernel.SetFaultInjector(&injector);
  injector.ArmOnce(FaultClass::kZombieFlood);
  kernel.SwitchTo(b);  // the armed flood fires inside this switch
  EXPECT_EQ(injector.Fires(FaultClass::kZombieFlood), 1u);

  auditor.Audit();
  EXPECT_GT(auditor.stats().htab_zombies_seen, 0u) << "the flood should leave HTAB zombies";

  // The idle task's reclaim sweep grinds the flood back down (§7's zombie story).
  const uint32_t before = kernel.mmu().htab().ValidCount();
  for (int pass = 0; pass < 200; ++pass) {
    kernel.RunIdle(Cycles(5000));
  }
  EXPECT_LT(kernel.mmu().htab().ValidCount(), before);
  auditor.Audit();
  kernel.SetFaultInjector(nullptr);
}

}  // namespace
}  // namespace ppcmm
