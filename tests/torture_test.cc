// Torture-harness tests: long seed-replayable random-op runs across all three reload
// strategies with the coherence auditor running continuously, determinism of replay, fault
// injection under load, out-of-memory recovery, and detection of a sabotaged flush.

#include <gtest/gtest.h>

#include "src/obs/json.h"
#include "src/verify/torture.h"

namespace ppcmm {
namespace {

TEST(TortureTest, TenThousandOpsCleanPerReloadStrategy) {
  for (const ReloadStrategy strategy :
       {ReloadStrategy::kHardwareHtabWalk, ReloadStrategy::kSoftwareHtab,
        ReloadStrategy::kSoftwareDirect}) {
    TortureOptions options;
    options.seed = 42;
    options.ops = 10000;
    options.audit_period = 64;
    options.strategy = strategy;
    const TortureResult result = RunTorture(options);
    EXPECT_FALSE(result.failed) << ReloadStrategyName(strategy) << "\n"
                                << result.failure_report;
    EXPECT_EQ(result.ops_executed, 10000u) << ReloadStrategyName(strategy);
    EXPECT_GT(result.audit_stats.audits, 100u) << ReloadStrategyName(strategy);
    EXPECT_GT(result.audit_stats.tlb_entries_checked, 0u);
  }
}

TEST(TortureTest, SameSeedReplaysIdentically) {
  TortureOptions options;
  options.seed = 1234;
  options.ops = 2000;
  options.audit_period = 32;
  options.zombie_flood_one_in = 40;
  options.spurious_tlb_flush_one_in = 200;
  const TortureResult first = RunTorture(options);
  const TortureResult second = RunTorture(options);
  EXPECT_EQ(first.failed, second.failed);
  EXPECT_EQ(first.ops_executed, second.ops_executed);
  EXPECT_EQ(first.oom_events, second.oom_events);
  EXPECT_EQ(first.fault_fires, second.fault_fires);
  EXPECT_EQ(first.config_desc, second.config_desc);
  EXPECT_EQ(first.audit_stats.audits, second.audit_stats.audits);
  EXPECT_EQ(first.audit_stats.tlb_entries_checked, second.audit_stats.tlb_entries_checked);
  EXPECT_EQ(first.audit_stats.htab_entries_checked, second.audit_stats.htab_entries_checked);
}

TEST(TortureTest, AllFaultClassesUnderLoadStayCoherent) {
  TortureOptions options;
  options.seed = 7;
  options.ops = 3000;
  options.audit_period = 16;
  options.page_alloc_exhaustion_one_in = 400;
  options.htab_eviction_storm_one_in = 150;
  options.spurious_tlb_flush_one_in = 300;
  options.vsid_wrap_one_in = 50;
  options.zombie_flood_one_in = 60;
  const TortureResult result = RunTorture(options);
  EXPECT_FALSE(result.failed) << result.failure_report;
  EXPECT_GT(result.fault_fires, 0u);
}

TEST(TortureTest, GenuineExhaustionIsRecoveredNotFatal) {
  TortureOptions options;
  options.seed = 99;
  options.ops = 4000;
  options.audit_period = 64;
  options.ram_bytes = 8ull * 1024 * 1024;  // 1024 allocatable frames: the pool WILL run dry
  options.page_alloc_exhaustion_one_in = 200;
  const TortureResult result = RunTorture(options);
  EXPECT_FALSE(result.failed) << result.failure_report;
  EXPECT_GT(result.oom_events, 0u) << "8 MB should exhaust under this op stream";
  EXPECT_EQ(result.ops_executed + result.oom_events, 4000u);
}

TEST(TortureTest, BrokenFlushIsCaughtWithReplayableReport) {
  TortureOptions options;
  options.seed = 7;
  options.ops = 2000;
  options.audit_period = 1;  // audit after every op: pinpoint the corrupting operation
  options.break_tlb_invalidate = true;
  const TortureResult result = RunTorture(options);
  ASSERT_TRUE(result.failed) << "sabotaged tlbie escaped " << result.ops_executed << " ops";
  EXPECT_NE(result.failure_report.find("CoherenceAuditor violation"), std::string::npos)
      << result.failure_report;
  EXPECT_NE(result.failure_report.find("seed=7"), std::string::npos);
  EXPECT_NE(result.failure_report.find("op trace"), std::string::npos);

  // The report is not just structured — it replays: the same options fail identically.
  const TortureResult replay = RunTorture(options);
  EXPECT_EQ(replay.failed, true);
  EXPECT_EQ(replay.ops_executed, result.ops_executed);
  EXPECT_EQ(replay.failure_report, result.failure_report);
}

TEST(TortureTest, MultiCpuRunsStayCoherentAndReplayIdentically) {
  for (const uint32_t ncpus : {2u, 4u}) {
    TortureOptions options;
    options.seed = 42;
    options.ops = 6000;
    options.audit_period = 64;
    options.ncpus = ncpus;
    const TortureResult result = RunTorture(options);
    EXPECT_FALSE(result.failed) << "ncpus=" << ncpus << "\n" << result.failure_report;
    EXPECT_EQ(result.ops_executed, 6000u);
    EXPECT_GT(result.audit_stats.audits, 50u);

    const TortureResult replay = RunTorture(options);
    EXPECT_EQ(replay.failed, result.failed);
    EXPECT_EQ(replay.ops_executed, result.ops_executed);
    EXPECT_EQ(replay.audit_stats.audits, result.audit_stats.audits);
    EXPECT_EQ(replay.audit_stats.tlb_entries_checked, result.audit_stats.tlb_entries_checked);
  }
}

TEST(TortureTest, MultiCpuFailureReportRecordsFaultingCpuAndTlbSnapshots) {
  TortureOptions options;
  options.seed = 7;
  options.ops = 2000;
  options.audit_period = 1;
  options.ncpus = 2;
  options.break_tlb_invalidate = true;
  const TortureResult result = RunTorture(options);
  ASSERT_TRUE(result.failed) << "sabotaged tlbie escaped " << result.ops_executed
                             << " ops at ncpus=2";
  // The report must say which CPU the check fired on and dump every CPU's TLB state.
  EXPECT_NE(result.failure_report.find(" cpu="), std::string::npos) << result.failure_report;
  EXPECT_NE(result.failure_report.find("/2"), std::string::npos) << result.failure_report;
  EXPECT_NE(result.failure_report.find("per-CPU TLB snapshot"), std::string::npos)
      << result.failure_report;
  EXPECT_NE(result.failure_report.find("(faulting)"), std::string::npos)
      << result.failure_report;
  EXPECT_NE(result.failure_report.find("cpu 1:"), std::string::npos) << result.failure_report;

  // And it replays bit-identically, snapshot included.
  const TortureResult replay = RunTorture(options);
  EXPECT_EQ(replay.failure_report, result.failure_report);
}

TEST(TortureTest, ExportedDocumentsRoundTripThroughTheParser) {
  TortureOptions options;
  options.seed = 11;
  options.ops = 1500;
  options.audit_period = 64;
  options.vsid_wrap_one_in = 50;  // force rollover events into the trace
  const TortureResult result = RunTorture(options);
  ASSERT_FALSE(result.failed) << result.failure_report;

  std::string error;
  const auto trace = JsonValue::Parse(result.trace_json, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  const JsonValue* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->Items().size(), 100u);
  // The satellite events actually appear in a faulted run.
  bool saw_fault_injected = false;
  for (const JsonValue& e : events->Items()) {
    const JsonValue* name = e.Find("name");
    if (name != nullptr && name->AsString() == "fault_injected") {
      saw_fault_injected = true;
    }
  }
  EXPECT_TRUE(saw_fault_injected);

  const auto metrics = JsonValue::Parse(result.metrics_json, &error);
  ASSERT_TRUE(metrics.has_value()) << error;
  const JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("hw.cycles"), nullptr);
  EXPECT_GT(counters->Find("hw.cycles")->AsNumber(), 0.0);
  ASSERT_NE(counters->Find("lat.page_fault.count"), nullptr);
  EXPECT_GT(counters->Find("lat.page_fault.count")->AsNumber(), 0.0);
}

TEST(TortureTest, TraceCaptureOffYieldsEmptyDocuments) {
  TortureOptions options;
  options.seed = 11;
  options.ops = 500;
  options.capture_trace = false;
  const TortureResult result = RunTorture(options);
  EXPECT_FALSE(result.failed) << result.failure_report;
  EXPECT_TRUE(result.trace_json.empty());
  EXPECT_TRUE(result.metrics_json.empty());
}

}  // namespace
}  // namespace ppcmm
