// Optional board-level L2 cache tests: the hierarchy layering and the board-quality effect.

#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/kernel/layout.h"

namespace ppcmm {
namespace {

TEST(L2CacheTest, ProfileWiring) {
  const MachineConfig plain = MachineConfig::Ppc604(185);
  EXPECT_FALSE(plain.has_l2);
  const MachineConfig with_l2 = MachineConfig::Ppc604WithL2(185);
  EXPECT_TRUE(with_l2.has_l2);
  EXPECT_EQ(with_l2.l2.size_bytes, 512u * 1024);
  Machine machine(with_l2);
  ASSERT_NE(machine.l2cache(), nullptr);
  Machine plain_machine(plain);
  EXPECT_EQ(plain_machine.l2cache(), nullptr);
}

TEST(L2CacheTest, L2HitIsCheaperThanMemory) {
  Machine machine(MachineConfig::Ppc604WithL2(185));
  const PhysAddr pa(0x10000);
  machine.TouchData(pa, false);  // L1 miss + L2 miss: full memory fill
  const uint64_t cold = machine.Now().value;
  EXPECT_GE(cold, machine.config().memory.line_fill_cycles);

  // Evict the line from L1 (fill its set with conflicting lines), keeping it in the L2.
  // L1: 16K 4-way, 128 sets, set stride 4K... lines at pa + k*4K share the set.
  for (uint32_t k = 1; k <= 4; ++k) {
    machine.TouchData(PhysAddr(0x10000 + k * 4096), false);
  }
  EXPECT_FALSE(machine.dcache().Contains(pa));
  EXPECT_TRUE(machine.l2cache()->Contains(pa));

  const uint64_t before = machine.Now().value;
  machine.TouchData(pa, false);  // L1 miss, L2 hit
  const uint64_t l2_hit_cost = machine.Now().value - before;
  EXPECT_EQ(l2_hit_cost, machine.config().l2_hit_cycles);
  EXPECT_LT(l2_hit_cost, machine.config().memory.line_fill_cycles);
}

TEST(L2CacheTest, UncachedAccessesBypassBothLevels) {
  Machine machine(MachineConfig::Ppc604WithL2(185));
  machine.TouchData(PhysAddr(0x20000), true, /*cached=*/false);
  EXPECT_FALSE(machine.dcache().Contains(PhysAddr(0x20000)));
  EXPECT_FALSE(machine.l2cache()->Contains(PhysAddr(0x20000)));
}

TEST(L2CacheTest, SharedBetweenInstructionAndData) {
  Machine machine(MachineConfig::Ppc604WithL2(185));
  machine.TouchInstruction(PhysAddr(0x30000));
  EXPECT_TRUE(machine.l2cache()->Contains(PhysAddr(0x30000)));
  // A data access to the same line: L1d misses, unified L2 hits.
  const uint64_t before = machine.Now().value;
  machine.TouchData(PhysAddr(0x30000), false);
  EXPECT_EQ(machine.Now().value - before, machine.config().l2_hit_cycles);
}

TEST(L2CacheTest, L2SpeedsWorkingSetsBetweenL1AndL2Reach) {
  // A working set bigger than the 16K L1 but inside the 512K L2: the L2 board wins big.
  auto run = [](const MachineConfig& mc) {
    System sys(mc, OptimizationConfig::AllOptimizations());
    Kernel& kernel = sys.kernel();
    const TaskId t = kernel.CreateTask("ws");
    kernel.Exec(t, ExecImage{.text_pages = 4, .data_pages = 64, .stack_pages = 2});
    kernel.SwitchTo(t);
    // 48 pages x 32 lines = 192 KB of data, touched twice.
    auto pass = [&] {
      for (uint32_t p = 0; p < 48; ++p) {
        for (uint32_t line = 0; line < 32; ++line) {
          kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize + line * 128),
                           AccessKind::kLoad);
        }
      }
    };
    pass();  // fault in + populate L2
    return sys.TimeMicros(pass);
  };
  const double without_l2 = run(MachineConfig::Ppc604(185));
  const double with_l2 = run(MachineConfig::Ppc604WithL2(185));
  EXPECT_LT(with_l2, without_l2 * 0.8);
}

}  // namespace
}  // namespace ppcmm
