// The cycle-attribution ledger's two contracts:
//
//  1. Conservation: with attribution on, the per-cause cells sum bit-exactly to the cycles
//     the machine simulated — no cycle is lost, none is double-counted, and there is no
//     "unknown" bucket to hide in (the base cell is "instruction" by construction). Checked
//     across every fuzz preset x reload strategy combination.
//  2. Zero perturbation: attribution (on or off) never changes what the simulation does —
//     hardware counters are identical with the ledger enabled, and a disabled ledger
//     records nothing at all.
//
// Plus unit coverage for the ledger mechanics (Rebind, nesting, per-task cells, the flight
// ring) and the src/obs/attr exporters built on top.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/obs/attr/attr_export.h"
#include "src/verify/fuzz/differential.h"
#include "src/verify/torture.h"

namespace ppcmm {
namespace {

// Crosses every instrumented path: faults, COW breaks, TLB reloads, range and context
// flushes, syscalls, pipes, file I/O, context switches, idle reclaim and zeroing.
void Workload(System& sys) {
  Kernel& kernel = sys.kernel();
  const TaskId a = kernel.CreateTask("a");
  kernel.Exec(a, ExecImage{.text_pages = 4, .data_pages = 64, .stack_pages = 4});
  kernel.SwitchTo(a);
  for (uint32_t i = 0; i < 32; ++i) {
    kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kStore);
  }
  const TaskId child = kernel.Fork(a);
  kernel.SwitchTo(child);
  for (uint32_t i = 0; i < 8; ++i) {
    kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kStore);  // COW
  }
  const uint32_t map = kernel.Mmap(30);
  for (uint32_t i = 0; i < 30; ++i) {
    kernel.UserTouch(EffAddr::FromPage(map + i), AccessKind::kStore);
  }
  kernel.Munmap(map, 30);  // above the cutoff: lazy context flush
  const uint32_t map2 = kernel.Mmap(4);
  for (uint32_t i = 0; i < 4; ++i) {
    kernel.UserTouch(EffAddr::FromPage(map2 + i), AccessKind::kStore);
  }
  kernel.Munmap(map2, 4);  // below the cutoff: eager per-page flush
  kernel.SwitchTo(a);
  kernel.Exit(child);
  kernel.RunIdle(Cycles(20000));  // reclaim + zeroing passes
}

uint64_t CellSum(const CycleLedger& ledger) {
  uint64_t sum = 0;
  for (const CycleLedger::Cell& cell : ledger.Cells()) {
    sum += cell.cycles;
  }
  return sum;
}

TEST(AttrTest, ConservationAcrossEveryPresetAndStrategy) {
  const ReloadStrategy strategies[] = {ReloadStrategy::kSoftwareDirect,
                                       ReloadStrategy::kSoftwareHtab,
                                       ReloadStrategy::kHardwareHtabWalk};
  for (const FuzzPreset& preset : FuzzPresets()) {
    for (const ReloadStrategy strategy : strategies) {
      // Same machine/config derivation the differential fuzzer uses: the strategy pins
      // the direct-reload bit, hardware walk needs a 604, the software paths a 603.
      OptimizationConfig config = preset.config;
      config.no_htab_direct_reload = strategy == ReloadStrategy::kSoftwareDirect;
      const MachineConfig machine = strategy == ReloadStrategy::kHardwareHtabWalk
                                        ? MachineConfig::Ppc604(185)
                                        : MachineConfig::Ppc603(80);
      System sys(machine, config);
      CycleLedger& ledger = sys.machine().attr();
      ledger.SetEnabled(true);
      const uint64_t before = sys.counters().cycles;
      Workload(sys);
      const uint64_t simulated = sys.counters().cycles - before;
      const std::string where =
          preset.name + " / " + ReloadStrategyName(strategy);
      ASSERT_GT(simulated, 0u) << where;
      // Bit-exact: every simulated cycle is attributed, exactly once.
      EXPECT_EQ(ledger.TotalAttributed(), simulated) << where;
      EXPECT_EQ(CellSum(ledger), simulated) << where;
    }
  }
}

TEST(AttrTest, EnabledAttributionDoesNotPerturbTheSimulation) {
  System off(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Workload(off);

  System on(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  on.machine().attr().SetEnabled(true);
  Workload(on);

  EXPECT_GT(on.machine().attr().events_recorded(), 0u);
  const HwCounters& c_off = off.counters();
  const HwCounters& c_on = on.counters();
  c_off.ForEachField([&](const char* name, uint64_t value_off, bool) {
    c_on.ForEachField([&](const char* on_name, uint64_t value_on, bool) {
      if (std::string(name) == on_name) {
        EXPECT_EQ(value_off, value_on) << name;
      }
    });
  });
  EXPECT_EQ(c_off.cycles, c_on.cycles);
}

TEST(AttrTest, DisabledLedgerRecordsNothing) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  ASSERT_FALSE(sys.machine().attr().enabled());
  Workload(sys);
  EXPECT_EQ(sys.machine().attr().TotalAttributed(), 0u);
  EXPECT_TRUE(sys.machine().attr().Cells().empty());
  EXPECT_TRUE(sys.machine().attr().RecentEvents().empty());
  EXPECT_EQ(sys.machine().attr().events_recorded(), 0u);
  EXPECT_GT(sys.counters().cycles, 0u);
}

TEST(AttrTest, ScopesNestAndRebindMovesCycles) {
  Machine machine(MachineConfig::Ppc604(185));
  machine.attr().SetEnabled(true);
  machine.AddCycles(Cycles(7));  // base cell: instruction
  {
    CycleScope outer(machine, AttrCause::kSyscall);
    machine.AddCycles(Cycles(10));
    {
      CycleScope inner(machine, AttrCause::kHashSearchPrimary);
      machine.AddCycles(Cycles(3));
      inner.Rebind(AttrCause::kHashSearchMiss);  // primary turned out to be a miss
      machine.AddCycles(Cycles(2));
    }
    machine.AddCycles(Cycles(1));
  }
  const std::map<std::string, uint64_t> totals = AttrCauseTotals(machine.attr());
  EXPECT_EQ(totals.at("instruction"), 7u);
  EXPECT_EQ(totals.at("syscall"), 11u);
  EXPECT_EQ(totals.at("syscall;hash_miss"), 5u);
  EXPECT_EQ(totals.count("syscall;hash_primary"), 0u);
  EXPECT_EQ(machine.attr().TotalAttributed(), 23u);
}

TEST(AttrTest, CellsAreKeyedByTask) {
  Machine machine(MachineConfig::Ppc604(185));
  machine.attr().SetEnabled(true);
  machine.attr().SetCurrentTask(1);
  {
    CycleScope scope(machine, AttrCause::kPipe);
    machine.AddCycles(Cycles(4));
  }
  machine.attr().SetCurrentTask(2);
  {
    CycleScope scope(machine, AttrCause::kPipe);
    machine.AddCycles(Cycles(9));
  }
  uint64_t task1 = 0, task2 = 0;
  for (const CycleLedger::Cell& cell : machine.attr().Cells()) {
    if (cell.task == 1) task1 += cell.cycles;
    if (cell.task == 2) task2 += cell.cycles;
  }
  EXPECT_EQ(task1, 4u);
  EXPECT_EQ(task2, 9u);
}

TEST(AttrTest, FlightRingKeepsTheNewestEvents) {
  Machine machine(MachineConfig::Ppc604(185));
  machine.attr().SetEnabled(true);
  for (uint32_t i = 0; i < 300; ++i) {
    CycleScope scope(machine, AttrCause::kSyscall);
    machine.AddCycles(Cycles(i + 1));
  }
  EXPECT_EQ(machine.attr().events_recorded(), 300u);
  const std::vector<AttrEvent> events = machine.attr().RecentEvents();
  ASSERT_EQ(events.size(), CycleLedger::kFlightCapacity);
  // Oldest-first window over the last 256 of 300 closes: cycles 45, 46, ..., 300.
  EXPECT_EQ(events.front().cycles, 300u - CycleLedger::kFlightCapacity + 1);
  EXPECT_EQ(events.back().cycles, 300u);
  EXPECT_EQ(events.back().cause, AttrCause::kSyscall);

  const std::string dump = FlightRecorderDump(machine.attr(), "unit test");
  EXPECT_NE(dump.find("flight recorder: unit test"), std::string::npos);
  EXPECT_NE(dump.find("syscall"), std::string::npos);
}

TEST(AttrTest, ExportersRoundTrip) {
  Machine machine(MachineConfig::Ppc604(185));
  machine.attr().SetEnabled(true);
  machine.AddCycles(Cycles(100));
  {
    CycleScope scope(machine, AttrCause::kCowFault);
    machine.AddCycles(Cycles(40));
    {
      CycleScope copy(machine, AttrCause::kCowCopy);
      machine.AddCycles(Cycles(60));
    }
  }

  const std::string folded = AttrToFolded(machine.attr());
  EXPECT_NE(folded.find("task0;instruction 100"), std::string::npos);
  EXPECT_NE(folded.find("task0;cow_fault 40"), std::string::npos);
  EXPECT_NE(folded.find("task0;cow_fault;cow_copy 60"), std::string::npos);

  const JsonValue doc = AttrToJson(machine.attr());
  EXPECT_EQ(doc.Find("total_cycles")->AsNumber(), 200.0);
  const std::map<std::string, uint64_t> totals = AttrCauseTotalsFromJson(doc);
  EXPECT_EQ(totals, AttrCauseTotals(machine.attr()));

  // A serialize -> parse round trip preserves the cause map the diff tool consumes.
  std::string error;
  const std::optional<JsonValue> parsed = JsonValue::Parse(doc.Serialize(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(AttrCauseTotalsFromJson(*parsed), totals);
}

TEST(AttrTest, DiffReportOrdersByMagnitudeAndMarksNewCauses) {
  const std::map<std::string, uint64_t> a{{"pipe", 1000}, {"syscall", 500}};
  const std::map<std::string, uint64_t> b{{"pipe", 400}, {"syscall", 510}, {"fork", 90}};
  const std::string report = AttrDiffReport("a", a, "b", b);
  const size_t pipe = report.find("pipe");
  const size_t fork = report.find("fork");
  const size_t syscall = report.find("syscall");
  ASSERT_NE(pipe, std::string::npos);
  ASSERT_NE(fork, std::string::npos);
  ASSERT_NE(syscall, std::string::npos);
  EXPECT_LT(pipe, fork);     // |delta| 600 before 90
  EXPECT_LT(fork, syscall);  // 90 before 10
  EXPECT_NE(report.find("new"), std::string::npos);
  EXPECT_NE(report.find("TOTAL"), std::string::npos);
}

TEST(AttrTest, ClearResetsButStaysEnabled) {
  Machine machine(MachineConfig::Ppc604(185));
  machine.attr().SetEnabled(true);
  {
    CycleScope scope(machine, AttrCause::kExec);
    machine.AddCycles(Cycles(5));
  }
  machine.attr().Clear();
  EXPECT_EQ(machine.attr().TotalAttributed(), 0u);
  EXPECT_EQ(machine.attr().events_recorded(), 0u);
  machine.AddCycles(Cycles(3));  // still attributing after Clear
  EXPECT_EQ(machine.attr().TotalAttributed(), 3u);
}

}  // namespace
}  // namespace ppcmm
