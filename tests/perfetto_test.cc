// Perfetto exporter tests: a golden document for a minimal record set, plus structural
// checks (valid JSON, monotonic timestamps, pid/tid mapping, flow pairs) on a real trace.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/obs/perfetto.h"

namespace ppcmm {
namespace {

TraceRecord MakeRecord(uint64_t cycle, TraceEvent event, uint32_t a, uint32_t b,
                       uint32_t task) {
  TraceRecord r;
  r.cycle = cycle;
  r.event = event;
  r.a = a;
  r.b = b;
  r.task = task;
  return r;
}

// The serializer is compact and insertion-ordered, so the document for a fixed record set
// is byte-stable: this golden catches accidental format drift.
TEST(PerfettoTest, GoldenMinimalDocument) {
  const std::vector<TraceRecord> records = {
      MakeRecord(200, TraceEvent::kTlbMiss, 0x100, 0, 3),
  };
  PerfettoExportOptions options;
  options.clock_mhz = 100.0;  // 200 cycles -> 2 us
  const std::string expected =
      "{\"traceEvents\":["
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"ppcmm\"}},"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"kernel\"}},"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":3,"
      "\"args\":{\"name\":\"task 3\"}},"
      "{\"name\":\"tlb_miss\",\"cat\":\"mmu\",\"ph\":\"i\",\"s\":\"t\",\"ts\":2,"
      "\"pid\":1,\"tid\":3,\"args\":{\"a\":256,\"b\":0,\"cycle\":200}}"
      "],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(PerfettoTraceJson(records, options).Serialize(), expected);
}

TEST(PerfettoTest, ContextSwitchEmitsFlowPair) {
  const std::vector<TraceRecord> records = {
      MakeRecord(100, TraceEvent::kContextSwitch, 1, 2, 1),
  };
  const auto parsed = JsonValue::Parse(PerfettoTraceJson(records).Serialize());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  const JsonValue* start = nullptr;
  const JsonValue* finish = nullptr;
  for (const JsonValue& e : events->Items()) {
    const JsonValue* ph = e.Find("ph");
    if (ph != nullptr && ph->AsString() == "s") {
      start = &e;
    }
    if (ph != nullptr && ph->AsString() == "f") {
      finish = &e;
    }
  }
  ASSERT_NE(start, nullptr);
  ASSERT_NE(finish, nullptr);
  // The arrow runs from the outgoing task's track to the incoming one's, same flow id.
  EXPECT_DOUBLE_EQ(start->Find("tid")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(finish->Find("tid")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(start->Find("id")->AsNumber(), finish->Find("id")->AsNumber());
  EXPECT_EQ(finish->Find("bp")->AsString(), "e");
}

TEST(PerfettoTest, ExplicitTaskNamesWinOverDefaults) {
  const std::vector<TraceRecord> records = {
      MakeRecord(10, TraceEvent::kPageFault, 0, 0, 7),
  };
  PerfettoExportOptions options;
  options.task_names.emplace_back(7, "compiler");
  const auto parsed = JsonValue::Parse(PerfettoTraceJson(records, options).Serialize());
  ASSERT_TRUE(parsed.has_value());
  bool named = false;
  for (const JsonValue& e : parsed->Find("traceEvents")->Items()) {
    const JsonValue* name = e.Find("name");
    if (name != nullptr && name->AsString() == "thread_name" &&
        e.Find("tid")->AsNumber() == 7.0) {
      EXPECT_EQ(e.Find("args")->Find("name")->AsString(), "compiler");
      named = true;
    }
  }
  EXPECT_TRUE(named);
}

TEST(PerfettoTest, RealTraceIsValidMonotonicAndAttributed) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  sys.machine().trace().Enable();
  Kernel& kernel = sys.kernel();
  const TaskId a = kernel.CreateTask("a");
  const TaskId b = kernel.CreateTask("b");
  kernel.Exec(a, ExecImage{});
  kernel.Exec(b, ExecImage{});
  kernel.SwitchTo(a);
  for (uint32_t i = 0; i < 8; ++i) {
    kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kStore);
  }
  kernel.SwitchTo(b);
  kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
  kernel.RunIdle(Cycles(2000));

  PerfettoExportOptions options;
  options.clock_mhz = sys.machine_config().clock_mhz;
  options.pid = 42;
  const std::string text = PerfettoTraceString(sys.machine().trace(), options);
  std::string error;
  const auto parsed = JsonValue::Parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Find("displayTimeUnit")->AsString(), "ms");

  const auto records = sys.machine().trace().Records();
  double last_ts = -1.0;
  size_t instants = 0;
  size_t flows = 0;
  for (const JsonValue& e : parsed->Find("traceEvents")->Items()) {
    EXPECT_DOUBLE_EQ(e.Find("pid")->AsNumber(), 42.0);
    const std::string ph = e.Find("ph")->AsString();
    if (ph == "M") {
      continue;
    }
    const double ts = e.Find("ts")->AsNumber();
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    if (ph == "i") {
      ++instants;
    } else {
      ++flows;
    }
  }
  // One instant per record; one s+f pair per context switch.
  EXPECT_EQ(instants, records.size());
  size_t switches = 0;
  for (const TraceRecord& r : records) {
    switches += r.event == TraceEvent::kContextSwitch ? 1 : 0;
  }
  EXPECT_GE(switches, 2u);
  EXPECT_EQ(flows, 2 * switches);

  // Instants sit on the track of the task they were attributed to.
  size_t i = 0;
  for (const JsonValue& e : parsed->Find("traceEvents")->Items()) {
    if (e.Find("ph")->AsString() != "i") {
      continue;
    }
    EXPECT_DOUBLE_EQ(e.Find("tid")->AsNumber(), static_cast<double>(records[i].task));
    EXPECT_EQ(e.Find("name")->AsString(), TraceEventName(records[i].event));
    ++i;
  }
}

}  // namespace
}  // namespace ppcmm
