// Differential-fuzzer smoke tests:
//
//   * every optimization preset survives a 10k-op differential run at a fixed seed with
//     zero divergences (reload strategy and fast path rotate with the preset index so the
//     suite covers all six combinations);
//   * a planted kernel bug (eager page flush skips its tlbie) is detected and the
//     minimizer shrinks the failing stream to a handful of ops that still reproduce it;
//   * streams serialize to replay files and back losslessly, and generation is
//     deterministic per seed.

#include <gtest/gtest.h>

#include <string>

#include "src/verify/fuzz/differential.h"
#include "src/verify/fuzz/minimize.h"

namespace ppcmm {
namespace {

class FuzzPresetSmoke : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPresetSmoke, TenThousandOpsNoDivergence) {
  const int index = GetParam();
  const FuzzPreset preset = FuzzPresets()[static_cast<size_t>(index)];

  DifferentialOptions options;
  options.config = preset.config;
  options.config_name = preset.name;
  const ReloadStrategy strategies[] = {ReloadStrategy::kSoftwareDirect,
                                       ReloadStrategy::kSoftwareHtab,
                                       ReloadStrategy::kHardwareHtabWalk};
  options.strategy = strategies[index % 3];
  options.fast_path = index % 2 == 0;
  options.check_period = 2000;

  const FuzzStream stream = GenerateStream(0xF00D + static_cast<uint64_t>(index), 10000);
  const DifferentialResult result = RunDifferential(stream, options);
  EXPECT_FALSE(result.diverged) << result.report;
  // The stream must be doing real work, not degenerating into skips.
  EXPECT_GT(result.ops_executed, 5000u);
  EXPECT_GT(result.coverage.executed[static_cast<uint32_t>(FuzzOpKind::kFork)], 0u);
  EXPECT_GT(result.coverage.executed[static_cast<uint32_t>(FuzzOpKind::kMmap)], 0u);
  EXPECT_GT(result.coverage.executed[static_cast<uint32_t>(FuzzOpKind::kFbTouch)], 0u);
}

std::string PresetCaseName(const ::testing::TestParamInfo<int>& info) {
  return FuzzPresets()[static_cast<size_t>(info.param)].name;
}

INSTANTIATE_TEST_SUITE_P(AllPresets, FuzzPresetSmoke,
                         ::testing::Range(0, static_cast<int>(FuzzPresets().size())),
                         PresetCaseName);

// Plant the test-only flush bug, prove the differential run catches it, and prove the
// minimizer shrinks the repro to a few ops that still diverge after a serialize/parse
// round trip — the full report-to-replay pipeline.
TEST(FuzzMinimizer, ShrinksPlantedDivergenceToAFewOps) {
  DifferentialOptions options;
  options.config = OptimizationConfig::Baseline();
  options.config_name = "baseline";
  options.strategy = ReloadStrategy::kSoftwareHtab;
  options.fast_path = true;
  options.check_period = 200;
  options.break_tlb_invalidate = true;

  const FuzzStream stream = GenerateStream(0xBADF1u, 600);
  const DifferentialResult planted = RunDifferential(stream, options);
  ASSERT_TRUE(planted.diverged) << "planted tlbie bug went undetected";

  MinimizeOptions min_options;
  min_options.run = options;
  const MinimizeResult shrunk = MinimizeStream(stream, min_options);
  EXPECT_LE(shrunk.minimized.ops.size(), 5u)
      << "minimized repro should be a handful of ops:\n"
      << SerializeStream(shrunk.minimized);
  EXPECT_TRUE(shrunk.failure.diverged);
  EXPECT_FALSE(shrunk.failure.report.empty());

  // The written replay must reproduce the divergence byte-for-byte.
  FuzzStream reparsed;
  std::string error;
  ASSERT_TRUE(ParseStream(SerializeStream(shrunk.minimized), &reparsed, &error)) << error;
  DifferentialOptions replay_run = options;
  replay_run.check_period = 1;
  EXPECT_TRUE(RunDifferential(reparsed, replay_run).diverged);

  // And without the sabotage, the minimized stream is clean: the repro points at the
  // planted bug, not at some latent real one.
  DifferentialOptions healthy = replay_run;
  healthy.break_tlb_invalidate = false;
  const DifferentialResult clean = RunDifferential(reparsed, healthy);
  EXPECT_FALSE(clean.diverged) << clean.report;
}

// SMP lockstep: the same SMP-weighted stream must run divergence-free at every machine
// width. At ncpus=1 every cpu_switch op is skipped (the stream degenerates to the
// uniprocessor mix); at 2 and 4 the oracle tracks per-CPU current tasks and the runner
// asserts the kernel agrees after every op and at every full cross-check.
class FuzzSmpLockstep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzSmpLockstep, TenThousandOpsNoDivergence) {
  const uint32_t ncpus = GetParam();
  const FuzzStream stream = GenerateSmpStream(0x54B00 + ncpus, 10000);

  for (const char* preset_name : {"baseline", "all"}) {
    const FuzzPreset preset = FuzzPresetByName(preset_name);
    DifferentialOptions options;
    options.config = preset.config;
    options.config_name = preset.name;
    options.strategy =
        ncpus == 4 ? ReloadStrategy::kHardwareHtabWalk : ReloadStrategy::kSoftwareHtab;
    options.fast_path = true;
    options.check_period = 2000;
    options.ncpus = ncpus;

    const DifferentialResult result = RunDifferential(stream, options);
    EXPECT_FALSE(result.diverged) << "ncpus=" << ncpus << " preset=" << preset_name << "\n"
                                  << result.report;
    EXPECT_GT(result.ops_executed, 5000u);
    const uint64_t hops =
        result.coverage.executed[static_cast<uint32_t>(FuzzOpKind::kCpuSwitch)];
    if (ncpus == 1) {
      EXPECT_EQ(hops, 0u) << "cpu_switch must be skipped on a uniprocessor";
    } else {
      EXPECT_GT(hops, 100u) << "SMP stream must actually hop CPUs";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, FuzzSmpLockstep, ::testing::Values(1u, 2u, 4u),
                         [](const ::testing::TestParamInfo<uint32_t>& param_info) {
                           return "ncpus" + std::to_string(param_info.param);
                         });

// The planted tlbie bug must be just as catchable — and just as minimizable — on a
// multi-CPU machine, where the stale entry can sit in a *remote* CPU's TLB.
TEST(FuzzMinimizer, ShrinksPlantedDivergenceAtFourCpus) {
  DifferentialOptions options;
  options.config = OptimizationConfig::Baseline();
  options.config_name = "baseline";
  options.strategy = ReloadStrategy::kSoftwareHtab;
  options.fast_path = true;
  options.check_period = 100;
  options.break_tlb_invalidate = true;
  options.ncpus = 4;

  const FuzzStream stream = GenerateSmpStream(0x5111Au, 600);
  const DifferentialResult planted = RunDifferential(stream, options);
  ASSERT_TRUE(planted.diverged) << "planted tlbie bug went undetected at ncpus=4";

  MinimizeOptions min_options;
  min_options.run = options;
  const MinimizeResult shrunk = MinimizeStream(stream, min_options);
  EXPECT_LE(shrunk.minimized.ops.size(), 8u)
      << "minimized SMP repro should be a handful of ops:\n"
      << SerializeStream(shrunk.minimized);
  EXPECT_TRUE(shrunk.failure.diverged);

  // Clean without the sabotage: the repro points at the planted bug.
  DifferentialOptions healthy = options;
  healthy.break_tlb_invalidate = false;
  healthy.check_period = 1;
  EXPECT_FALSE(RunDifferential(shrunk.minimized, healthy).diverged);
}

// A broken *shootdown* (IPIs land, remote handler forgets the invalidation) is invisible
// on one CPU and invisible without task migration — the stale entry sits in a TLB the
// spotlight has left. The fuzzer must catch it at ncpus=4, and the ddmin-minimized repro
// must retain a cpu_switch op because the hop is load-bearing. The minimized stream for
// this seed is checked in as tests/replays/smp_shootdown_migration.replay.
TEST(FuzzMinimizer, BrokenShootdownNeedsACpuHopToReproduce) {
  DifferentialOptions options;
  options.config = OptimizationConfig::Baseline();
  options.config_name = "baseline";
  options.strategy = ReloadStrategy::kSoftwareHtab;
  options.fast_path = true;
  options.check_period = 100;
  options.break_shootdown = true;
  options.ncpus = 4;

  const FuzzStream stream = GenerateSmpStream(0x5D000u, 600);
  const DifferentialResult planted = RunDifferential(stream, options);
  ASSERT_TRUE(planted.diverged) << "planted shootdown bug went undetected at ncpus=4";

  // The identical stream and sabotage on a uniprocessor: ShootdownRound never runs, so the
  // bug is unreachable and the run must be clean.
  DifferentialOptions uni = options;
  uni.ncpus = 1;
  EXPECT_FALSE(RunDifferential(stream, uni).diverged);

  MinimizeOptions min_options;
  min_options.run = options;
  const MinimizeResult shrunk = MinimizeStream(stream, min_options);
  EXPECT_LE(shrunk.minimized.ops.size(), 12u) << SerializeStream(shrunk.minimized);
  uint32_t hops = 0;
  for (const FuzzOp& op : shrunk.minimized.ops) {
    hops += op.kind == FuzzOpKind::kCpuSwitch ? 1 : 0;
  }
  EXPECT_GE(hops, 1u) << "the minimized shootdown repro lost its CPU hop:\n"
                      << SerializeStream(shrunk.minimized);

  // Clean with a working shootdown: the repro points at the planted bug, not a real one.
  DifferentialOptions healthy = options;
  healthy.break_shootdown = false;
  healthy.check_period = 1;
  EXPECT_FALSE(RunDifferential(shrunk.minimized, healthy).diverged);
}

// GenerateSmpStream with zero extra weight is byte-identical to GenerateStream: the SMP
// kind rides at weight 0 in the base table, so pre-SMP (seed, op_count) pairs keep
// producing the exact streams the replay corpus and bug reports were recorded against.
TEST(FuzzStreamFormat, SmpGeneratorWithZeroWeightMatchesBaseGenerator) {
  const FuzzStream base = GenerateStream(0xC0FFEE, 2000);
  const FuzzStream smp = GenerateSmpStream(0xC0FFEE, 2000, /*cpu_switch_weight=*/0);
  ASSERT_EQ(base.ops.size(), smp.ops.size());
  for (size_t i = 0; i < base.ops.size(); ++i) {
    EXPECT_EQ(base.ops[i].kind, smp.ops[i].kind);
    EXPECT_EQ(base.ops[i].a, smp.ops[i].a);
    EXPECT_EQ(base.ops[i].b, smp.ops[i].b);
    EXPECT_EQ(base.ops[i].c, smp.ops[i].c);
  }
}

TEST(FuzzStreamFormat, SerializeParseRoundTrip) {
  const FuzzStream stream = GenerateStream(42, 100);
  FuzzStream reparsed;
  std::string error;
  ASSERT_TRUE(ParseStream(SerializeStream(stream), &reparsed, &error)) << error;
  ASSERT_EQ(reparsed.ops.size(), stream.ops.size());
  EXPECT_EQ(reparsed.seed, stream.seed);
  for (size_t i = 0; i < stream.ops.size(); ++i) {
    EXPECT_EQ(reparsed.ops[i].kind, stream.ops[i].kind);
    EXPECT_EQ(reparsed.ops[i].a, stream.ops[i].a);
    EXPECT_EQ(reparsed.ops[i].b, stream.ops[i].b);
    EXPECT_EQ(reparsed.ops[i].c, stream.ops[i].c);
  }
}

TEST(FuzzStreamFormat, ParseRejectsGarbage) {
  FuzzStream stream;
  std::string error;
  EXPECT_FALSE(ParseStream("", &stream, &error));
  EXPECT_FALSE(ParseStream("not-a-header\n", &stream, &error));
  EXPECT_FALSE(ParseStream("ppcmm-fuzz-replay v1\nwarp 1 2 3\n", &stream, &error));
  EXPECT_FALSE(ParseStream("ppcmm-fuzz-replay v1\ntouch 1 2\n", &stream, &error));
  // Comments and blank lines are fine.
  EXPECT_TRUE(
      ParseStream("ppcmm-fuzz-replay v1\n# a comment\n\nseed 9\ntouch 1 2 3\n", &stream,
                  &error))
      << error;
  EXPECT_EQ(stream.seed, 9u);
  ASSERT_EQ(stream.ops.size(), 1u);
  EXPECT_EQ(stream.ops[0].kind, FuzzOpKind::kTouch);
}

TEST(FuzzStreamFormat, GenerationIsDeterministicPerSeed) {
  const FuzzStream a = GenerateStream(7, 1000);
  const FuzzStream b = GenerateStream(7, 1000);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].kind, b.ops[i].kind);
    EXPECT_EQ(a.ops[i].a, b.ops[i].a);
  }
  const FuzzStream c = GenerateStream(8, 1000);
  bool any_difference = false;
  for (size_t i = 0; i < c.ops.size(); ++i) {
    any_difference |= c.ops[i].kind != a.ops[i].kind || c.ops[i].a != a.ops[i].a;
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace ppcmm
