// Differential-fuzzer smoke tests:
//
//   * every optimization preset survives a 10k-op differential run at a fixed seed with
//     zero divergences (reload strategy and fast path rotate with the preset index so the
//     suite covers all six combinations);
//   * a planted kernel bug (eager page flush skips its tlbie) is detected and the
//     minimizer shrinks the failing stream to a handful of ops that still reproduce it;
//   * streams serialize to replay files and back losslessly, and generation is
//     deterministic per seed.

#include <gtest/gtest.h>

#include <string>

#include "src/verify/fuzz/differential.h"
#include "src/verify/fuzz/minimize.h"

namespace ppcmm {
namespace {

class FuzzPresetSmoke : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPresetSmoke, TenThousandOpsNoDivergence) {
  const int index = GetParam();
  const FuzzPreset preset = FuzzPresets()[static_cast<size_t>(index)];

  DifferentialOptions options;
  options.config = preset.config;
  options.config_name = preset.name;
  const ReloadStrategy strategies[] = {ReloadStrategy::kSoftwareDirect,
                                       ReloadStrategy::kSoftwareHtab,
                                       ReloadStrategy::kHardwareHtabWalk};
  options.strategy = strategies[index % 3];
  options.fast_path = index % 2 == 0;
  options.check_period = 2000;

  const FuzzStream stream = GenerateStream(0xF00D + static_cast<uint64_t>(index), 10000);
  const DifferentialResult result = RunDifferential(stream, options);
  EXPECT_FALSE(result.diverged) << result.report;
  // The stream must be doing real work, not degenerating into skips.
  EXPECT_GT(result.ops_executed, 5000u);
  EXPECT_GT(result.coverage.executed[static_cast<uint32_t>(FuzzOpKind::kFork)], 0u);
  EXPECT_GT(result.coverage.executed[static_cast<uint32_t>(FuzzOpKind::kMmap)], 0u);
  EXPECT_GT(result.coverage.executed[static_cast<uint32_t>(FuzzOpKind::kFbTouch)], 0u);
}

std::string PresetCaseName(const ::testing::TestParamInfo<int>& info) {
  return FuzzPresets()[static_cast<size_t>(info.param)].name;
}

INSTANTIATE_TEST_SUITE_P(AllPresets, FuzzPresetSmoke,
                         ::testing::Range(0, static_cast<int>(FuzzPresets().size())),
                         PresetCaseName);

// Plant the test-only flush bug, prove the differential run catches it, and prove the
// minimizer shrinks the repro to a few ops that still diverge after a serialize/parse
// round trip — the full report-to-replay pipeline.
TEST(FuzzMinimizer, ShrinksPlantedDivergenceToAFewOps) {
  DifferentialOptions options;
  options.config = OptimizationConfig::Baseline();
  options.config_name = "baseline";
  options.strategy = ReloadStrategy::kSoftwareHtab;
  options.fast_path = true;
  options.check_period = 200;
  options.break_tlb_invalidate = true;

  const FuzzStream stream = GenerateStream(0xBADF1u, 600);
  const DifferentialResult planted = RunDifferential(stream, options);
  ASSERT_TRUE(planted.diverged) << "planted tlbie bug went undetected";

  MinimizeOptions min_options;
  min_options.run = options;
  const MinimizeResult shrunk = MinimizeStream(stream, min_options);
  EXPECT_LE(shrunk.minimized.ops.size(), 5u)
      << "minimized repro should be a handful of ops:\n"
      << SerializeStream(shrunk.minimized);
  EXPECT_TRUE(shrunk.failure.diverged);
  EXPECT_FALSE(shrunk.failure.report.empty());

  // The written replay must reproduce the divergence byte-for-byte.
  FuzzStream reparsed;
  std::string error;
  ASSERT_TRUE(ParseStream(SerializeStream(shrunk.minimized), &reparsed, &error)) << error;
  DifferentialOptions replay_run = options;
  replay_run.check_period = 1;
  EXPECT_TRUE(RunDifferential(reparsed, replay_run).diverged);

  // And without the sabotage, the minimized stream is clean: the repro points at the
  // planted bug, not at some latent real one.
  DifferentialOptions healthy = replay_run;
  healthy.break_tlb_invalidate = false;
  const DifferentialResult clean = RunDifferential(reparsed, healthy);
  EXPECT_FALSE(clean.diverged) << clean.report;
}

TEST(FuzzStreamFormat, SerializeParseRoundTrip) {
  const FuzzStream stream = GenerateStream(42, 100);
  FuzzStream reparsed;
  std::string error;
  ASSERT_TRUE(ParseStream(SerializeStream(stream), &reparsed, &error)) << error;
  ASSERT_EQ(reparsed.ops.size(), stream.ops.size());
  EXPECT_EQ(reparsed.seed, stream.seed);
  for (size_t i = 0; i < stream.ops.size(); ++i) {
    EXPECT_EQ(reparsed.ops[i].kind, stream.ops[i].kind);
    EXPECT_EQ(reparsed.ops[i].a, stream.ops[i].a);
    EXPECT_EQ(reparsed.ops[i].b, stream.ops[i].b);
    EXPECT_EQ(reparsed.ops[i].c, stream.ops[i].c);
  }
}

TEST(FuzzStreamFormat, ParseRejectsGarbage) {
  FuzzStream stream;
  std::string error;
  EXPECT_FALSE(ParseStream("", &stream, &error));
  EXPECT_FALSE(ParseStream("not-a-header\n", &stream, &error));
  EXPECT_FALSE(ParseStream("ppcmm-fuzz-replay v1\nwarp 1 2 3\n", &stream, &error));
  EXPECT_FALSE(ParseStream("ppcmm-fuzz-replay v1\ntouch 1 2\n", &stream, &error));
  // Comments and blank lines are fine.
  EXPECT_TRUE(
      ParseStream("ppcmm-fuzz-replay v1\n# a comment\n\nseed 9\ntouch 1 2 3\n", &stream,
                  &error))
      << error;
  EXPECT_EQ(stream.seed, 9u);
  ASSERT_EQ(stream.ops.size(), 1u);
  EXPECT_EQ(stream.ops[0].kind, FuzzOpKind::kTouch);
}

TEST(FuzzStreamFormat, GenerationIsDeterministicPerSeed) {
  const FuzzStream a = GenerateStream(7, 1000);
  const FuzzStream b = GenerateStream(7, 1000);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].kind, b.ops[i].kind);
    EXPECT_EQ(a.ops[i].a, b.ops[i].a);
  }
  const FuzzStream c = GenerateStream(8, 1000);
  bool any_difference = false;
  for (size_t i = 0; i < c.ops.size(); ++i) {
    any_difference |= c.ops[i].kind != a.ops[i].kind || c.ops[i].a != a.ops[i].a;
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace ppcmm
