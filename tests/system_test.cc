// System facade and statistics tests.

#include <gtest/gtest.h>

#include "src/core/stats.h"
#include "src/core/system.h"
#include "src/kernel/layout.h"

namespace ppcmm {
namespace {

TEST(SystemTest, ConstructionWiresEverything) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  EXPECT_EQ(sys.machine_config().clock_mhz, 185u);
  EXPECT_TRUE(sys.opt_config().lazy_context_flush);
  EXPECT_EQ(sys.mmu().htab().capacity(), 16384u);
  EXPECT_EQ(sys.ElapsedMicros(), 0.0);
}

TEST(SystemTest, TimeMicrosMeasuresOnlyTheBody) {
  System sys(MachineConfig::Ppc604(200), OptimizationConfig::Baseline());
  sys.machine().AddCycles(Cycles(12345));  // pre-existing time
  const double us = sys.TimeMicros([&] { sys.machine().AddCycles(Cycles(2000)); });
  EXPECT_DOUBLE_EQ(us, 10.0);
}

TEST(SystemTest, CountersForDiffsTheInterval) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId t = kernel.CreateTask("t");
  kernel.Exec(t, ExecImage{});
  kernel.SwitchTo(t);
  const HwCounters delta = sys.CountersFor([&] {
    kernel.NullSyscall();
    kernel.NullSyscall();
  });
  EXPECT_EQ(delta.syscalls, 2u);
}

TEST(SystemTest, StatsReflectHtabAndTlbState) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  const TaskId t = kernel.CreateTask("t");
  kernel.Exec(t, ExecImage{});
  kernel.SwitchTo(t);
  const HwCounters interval = sys.CountersFor([&] {
    kernel.UserTouchRange(EffAddr(kUserDataBase), 8 * kPageSize, kPageSize,
                          AccessKind::kStore);
  });
  const SystemStats stats = ComputeStats(sys, interval);
  EXPECT_EQ(stats.htab_capacity, 16384u);
  EXPECT_GT(stats.htab_valid, 0u);
  EXPECT_GT(stats.htab_utilization, 0.0);
  EXPECT_GT(stats.tlb_valid_entries, 0u);
  // Baseline kernel (no BATs): kernel pages occupy TLB entries.
  EXPECT_GT(stats.tlb_kernel_entries, 0u);
  EXPECT_GT(stats.tlb_kernel_share, 0.0);
  EXPECT_GT(stats.kernel_tlb_highwater, 0u);
  // Histogram sums to the PTEG count.
  uint32_t ptegs = 0;
  for (uint32_t h : stats.pteg_occupancy_histogram) {
    ptegs += h;
  }
  EXPECT_EQ(ptegs, 2048u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(SystemTest, DescribeMentionsToggles) {
  const std::string desc = OptimizationConfig::AllOptimizations().Describe();
  EXPECT_NE(desc.find("lazy_flush=1"), std::string::npos);
  EXPECT_NE(desc.find("scatter=897"), std::string::npos);
}

// Preset sanity: each "Only..." preset differs from the baseline in its one dimension.
TEST(SystemTest, PresetsAreSingleToggles) {
  const OptimizationConfig base = OptimizationConfig::Baseline();
  EXPECT_FALSE(base.kernel_bat_mapping);
  EXPECT_EQ(base.vsid_scatter, kNaiveVsidScatter);
  EXPECT_TRUE(OptimizationConfig::OnlyBatMapping().kernel_bat_mapping);
  EXPECT_EQ(OptimizationConfig::OnlyTunedScatter().vsid_scatter, kDefaultVsidScatter);
  EXPECT_TRUE(OptimizationConfig::OnlyFastHandlers().optimized_handlers);
  EXPECT_TRUE(OptimizationConfig::OnlyDirectReload().no_htab_direct_reload);
  EXPECT_TRUE(OptimizationConfig::OnlyLazyFlush().lazy_context_flush);
  EXPECT_EQ(OptimizationConfig::OnlyLazyFlush().range_flush_cutoff, 20u);
  EXPECT_TRUE(OptimizationConfig::OnlyIdleReclaim().idle_zombie_reclaim);
  EXPECT_TRUE(OptimizationConfig::OnlyUncachedPageTables().uncached_page_tables);
  EXPECT_EQ(OptimizationConfig::OnlyIdleZero(IdleZeroPolicy::kCached).idle_zero,
            IdleZeroPolicy::kCached);
  const OptimizationConfig all = OptimizationConfig::AllOptimizations();
  EXPECT_TRUE(all.kernel_bat_mapping && all.optimized_handlers && all.no_htab_direct_reload &&
              all.lazy_context_flush && all.idle_zombie_reclaim);
  // §8 was analysis, not a shipped change: the paper's final kernel kept cached page tables.
  EXPECT_FALSE(all.uncached_page_tables);
  EXPECT_TRUE(OptimizationConfig::AllPlusUncachedPageTables().uncached_page_tables);
  EXPECT_EQ(all.range_flush_cutoff, 20u);
  EXPECT_EQ(all.idle_zero, IdleZeroPolicy::kUncachedWithList);
}

}  // namespace
}  // namespace ppcmm
