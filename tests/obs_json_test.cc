// JsonValue tests: construction, stable serialization, escaping, and the parser the
// exporter tests use to prove their documents round-trip.

#include <gtest/gtest.h>

#include <string>

#include "src/obs/json.h"

namespace ppcmm {
namespace {

TEST(JsonTest, SerializesScalars) {
  EXPECT_EQ(JsonValue().Serialize(), "null");
  EXPECT_EQ(JsonValue(true).Serialize(), "true");
  EXPECT_EQ(JsonValue(false).Serialize(), "false");
  EXPECT_EQ(JsonValue(42).Serialize(), "42");
  EXPECT_EQ(JsonValue(uint64_t{1} << 40).Serialize(), "1099511627776");
  EXPECT_EQ(JsonValue("hi").Serialize(), "\"hi\"");
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zebra", 1);
  obj.Set("apple", 2);
  obj.Set("mango", 3);
  EXPECT_EQ(obj.Serialize(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
  // Set overwrites in place without reordering.
  obj.Set("apple", 9);
  EXPECT_EQ(obj.Serialize(), "{\"zebra\":1,\"apple\":9,\"mango\":3}");
  EXPECT_EQ(obj.Size(), 3u);
  ASSERT_NE(obj.Find("apple"), nullptr);
  EXPECT_DOUBLE_EQ(obj.Find("apple")->AsNumber(), 9.0);
  EXPECT_EQ(obj.Find("absent"), nullptr);
}

TEST(JsonTest, EscapesStrings) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("quote\"back\\slash"), "\"quote\\\"back\\\\slash\"");
  EXPECT_EQ(JsonQuote("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(JsonQuote(std::string("nul\x01") + "x"), "\"nul\\u0001x\"");
}

TEST(JsonTest, ParsesWhatItSerializes) {
  JsonValue doc = JsonValue::Object();
  doc.Set("name", "t\"est\n");
  doc.Set("pi", 3.25);
  doc.Set("n", -17);
  doc.Set("flag", true);
  doc.Set("nothing", JsonValue());
  JsonValue arr = JsonValue::Array();
  arr.Append(1);
  arr.Append("two");
  arr.Append(JsonValue::Object());
  doc.Set("list", std::move(arr));

  std::string error;
  const auto parsed = JsonValue::Parse(doc.Serialize(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Find("name")->AsString(), "t\"est\n");
  EXPECT_DOUBLE_EQ(parsed->Find("pi")->AsNumber(), 3.25);
  EXPECT_DOUBLE_EQ(parsed->Find("n")->AsNumber(), -17.0);
  EXPECT_TRUE(parsed->Find("flag")->AsBool());
  EXPECT_TRUE(parsed->Find("nothing")->IsNull());
  ASSERT_TRUE(parsed->Find("list")->IsArray());
  EXPECT_EQ(parsed->Find("list")->Items().size(), 3u);
  EXPECT_EQ(parsed->Find("list")->Items()[1].AsString(), "two");
  // Serialize(Parse(Serialize(x))) is a fixed point: the format is stable.
  EXPECT_EQ(parsed->Serialize(), doc.Serialize());
}

TEST(JsonTest, ParsesHandWrittenInput) {
  const auto parsed = JsonValue::Parse(
      "  { \"a\" : [ 1 , 2.5e1 , -3 ] , \"s\" : \"u\\u0041x\" , \"b\":false }  ");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->Find("a")->Items()[1].AsNumber(), 25.0);
  EXPECT_EQ(parsed->Find("s")->AsString(), "uAx");
  EXPECT_FALSE(parsed->Find("b")->AsBool());
}

TEST(JsonTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "\"unterminated", "tru", "1 2", "{\"a\":1}garbage",
        "{'single':1}", "[1,]", "nan"}) {
    std::string error;
    EXPECT_FALSE(JsonValue::Parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonTest, NumbersPrintIntegralWithoutPoint) {
  EXPECT_EQ(JsonNumber(3.0), "3");
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(-12.0), "-12");
  // Non-integral values keep enough digits to round-trip.
  const auto parsed = JsonValue::Parse(JsonNumber(0.1));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->AsNumber(), 0.1);
}

}  // namespace
}  // namespace ppcmm
