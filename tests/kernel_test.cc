// Kernel integration tests: process lifecycle, demand paging, copy-on-write fork, pipes,
// files, mmap — with data integrity verified through the simulated physical memory.

#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/sim/check.h"

namespace ppcmm {
namespace {

System MakeSystem(const OptimizationConfig& config = OptimizationConfig::AllOptimizations()) {
  return System(MachineConfig::Ppc604(185), config);
}

TaskId SpawnStd(Kernel& kernel, const char* name) {
  const TaskId id = kernel.CreateTask(name);
  kernel.Exec(id, ExecImage{.text_pages = 8, .data_pages = 32, .stack_pages = 4});
  kernel.SwitchTo(id);
  return id;
}

TEST(KernelTest, CreateExecSwitchRun) {
  System sys = MakeSystem();
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel, "t");
  EXPECT_EQ(kernel.current(), t);
  EXPECT_EQ(kernel.task(t).state, TaskState::kRunning);
  kernel.UserExecute(100);
  kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
  EXPECT_GT(sys.counters().cycles, 0u);
  EXPECT_GT(sys.counters().page_faults, 0u);
}

TEST(KernelTest, DemandFaultMapsZeroedPage) {
  System sys = MakeSystem();
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel, "t");
  const EffAddr ea(kUserDataBase + 3 * kPageSize);
  kernel.UserTouch(ea, AccessKind::kLoad);
  const auto pte = kernel.task(t).mm->page_table->LookupQuiet(ea);
  ASSERT_TRUE(pte.has_value());
  EXPECT_TRUE(pte->present);
  EXPECT_TRUE(sys.machine().memory().FrameIsZero(pte->frame));
  // A second touch is not a fault.
  const HwCounters before = sys.counters();
  kernel.UserTouch(ea, AccessKind::kLoad);
  EXPECT_EQ(sys.counters().Diff(before).page_faults, 0u);
}

TEST(KernelTest, FaultOutsideVmaThrows) {
  System sys = MakeSystem();
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel, "t");
  EXPECT_THROW(kernel.UserTouch(EffAddr(0x30000000), AccessKind::kLoad), CheckFailure);
}

TEST(KernelTest, WriteToReadOnlyVmaThrows) {
  System sys = MakeSystem();
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel, "t");
  const EffAddr text(kUserTextBase);
  kernel.UserTouch(text, AccessKind::kLoad);  // text is read-only
  EXPECT_THROW(kernel.UserTouch(text, AccessKind::kStore), CheckFailure);
  (void)t;
}

TEST(KernelTest, ForkSharesThenCopiesOnWrite) {
  System sys = MakeSystem();
  Kernel& kernel = sys.kernel();
  const TaskId parent = SpawnStd(kernel, "parent");
  const EffAddr ea(kUserDataBase);
  kernel.UserTouch(ea, AccessKind::kStore);
  const uint32_t parent_frame = kernel.task(parent).mm->page_table->LookupQuiet(ea)->frame;
  // Write a marker through simulated memory.
  sys.machine().memory().Write32(PhysAddr::FromFrame(parent_frame), 0xFEEDFACE);

  const TaskId child = kernel.Fork(parent);
  // Both PTEs now point at the same frame, read-only COW.
  const auto parent_pte = kernel.task(parent).mm->page_table->LookupQuiet(ea);
  const auto child_pte = kernel.task(child).mm->page_table->LookupQuiet(ea);
  ASSERT_TRUE(parent_pte && child_pte);
  EXPECT_EQ(parent_pte->frame, child_pte->frame);
  EXPECT_TRUE(parent_pte->cow);
  EXPECT_FALSE(parent_pte->writable);
  EXPECT_EQ(kernel.allocator().RefCount(parent_frame), 2u);

  // Child reads the parent's data.
  kernel.SwitchTo(child);
  kernel.UserTouch(ea, AccessKind::kLoad);
  EXPECT_EQ(sys.machine().memory().Read32(PhysAddr::FromFrame(child_pte->frame)),
            0xFEEDFACEu);

  // Child writes: gets its own copy carrying the old contents.
  kernel.UserTouch(ea + 8, AccessKind::kStore);
  const auto child_after = kernel.task(child).mm->page_table->LookupQuiet(ea);
  ASSERT_TRUE(child_after.has_value());
  EXPECT_NE(child_after->frame, parent_frame);
  EXPECT_TRUE(child_after->writable);
  EXPECT_EQ(sys.machine().memory().Read32(PhysAddr::FromFrame(child_after->frame)),
            0xFEEDFACEu);
  EXPECT_EQ(kernel.allocator().RefCount(parent_frame), 1u);

  // Parent's write now finds itself the sole owner: no copy, just re-enable write.
  kernel.SwitchTo(parent);
  kernel.UserTouch(ea + 16, AccessKind::kStore);
  const auto parent_after = kernel.task(parent).mm->page_table->LookupQuiet(ea);
  EXPECT_EQ(parent_after->frame, parent_frame);
  EXPECT_TRUE(parent_after->writable);
  EXPECT_FALSE(parent_after->cow);

  kernel.Exit(child);
  kernel.Exit(parent);
}

TEST(KernelTest, ExitReleasesAllTaskMemory) {
  System sys = MakeSystem(OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  const uint32_t free_before = kernel.allocator().FreeCount();
  const TaskId t = SpawnStd(kernel, "t");
  kernel.UserTouchRange(EffAddr(kUserDataBase), 20 * kPageSize, kPageSize,
                        AccessKind::kStore);
  EXPECT_LT(kernel.allocator().FreeCount(), free_before);
  kernel.Exit(t);
  EXPECT_EQ(kernel.allocator().FreeCount(), free_before);
  EXPECT_FALSE(kernel.TaskExists(t));
}

TEST(KernelTest, PipeDataIntegrity) {
  System sys = MakeSystem();
  Kernel& kernel = sys.kernel();
  const TaskId a = SpawnStd(kernel, "a");
  const TaskId b = SpawnStd(kernel, "b");
  const uint32_t pipe = kernel.CreatePipe();

  // Writer fills its buffer with a known pattern.
  kernel.SwitchTo(a);
  const EffAddr src(kUserDataBase);
  kernel.UserTouchRange(src, 1024, 32, AccessKind::kStore);
  const uint32_t src_frame = kernel.task(a).mm->page_table->LookupQuiet(src)->frame;
  for (uint32_t i = 0; i < 1024; i += 4) {
    sys.machine().memory().Write32(PhysAddr::FromFrame(src_frame, i), 0xA0000000 + i);
  }
  EXPECT_EQ(kernel.PipeWrite(pipe, src, 1024), 1024u);

  kernel.SwitchTo(b);
  const EffAddr dst(kUserDataBase + 0x10000);
  EXPECT_EQ(kernel.PipeRead(pipe, dst, 1024), 1024u);
  const uint32_t dst_frame = kernel.task(b).mm->page_table->LookupQuiet(dst)->frame;
  for (uint32_t i = 0; i < 1024; i += 4) {
    ASSERT_EQ(sys.machine().memory().Read32(PhysAddr::FromFrame(dst_frame, i)),
              0xA0000000 + i);
  }
  kernel.Exit(a);
  kernel.Exit(b);
}

TEST(KernelTest, PipeRespectsCapacityAndWraps) {
  System sys = MakeSystem();
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel, "t");
  const uint32_t pipe = kernel.CreatePipe();
  const EffAddr buf(kUserDataBase);
  EXPECT_EQ(kernel.PipeWrite(pipe, buf, 3000), 3000u);
  EXPECT_EQ(kernel.PipeWrite(pipe, buf, 3000), 1096u);  // capacity 4096
  EXPECT_EQ(kernel.PipeWrite(pipe, buf, 100), 0u);      // full
  EXPECT_EQ(kernel.PipeRead(pipe, buf, 2000), 2000u);
  EXPECT_EQ(kernel.PipeWrite(pipe, buf, 3000), 2000u);  // wrapped write
  EXPECT_EQ(kernel.PipeRead(pipe, buf, 5000), 4096u);   // drain
  EXPECT_EQ(kernel.PipeRead(pipe, buf, 10), 0u);        // empty
}

TEST(KernelTest, FileReadDeliversSynthesizedContents) {
  System sys = MakeSystem();
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel, "t");
  const FileId file = kernel.page_cache().CreateFile(4);
  const EffAddr dst(kUserDataBase);
  kernel.FileRead(file, 0, 2 * kPageSize, dst);

  // The page cache synthesizes word = (file * phi) ^ (page << 16) ^ offset.
  const uint32_t frame0 = kernel.task(t).mm->page_table->LookupQuiet(dst)->frame;
  const uint32_t expected0 = (file.value * 0x9E3779B9u) ^ 0 ^ 0;
  EXPECT_EQ(sys.machine().memory().Read32(PhysAddr::FromFrame(frame0)), expected0);
  const uint32_t frame1 =
      kernel.task(t).mm->page_table->LookupQuiet(dst + kPageSize)->frame;
  const uint32_t expected1 = (file.value * 0x9E3779B9u) ^ (1u << 16) ^ 0;
  EXPECT_EQ(sys.machine().memory().Read32(PhysAddr::FromFrame(frame1)), expected1);
}

TEST(KernelTest, FileRereadHitsPageCache) {
  System sys = MakeSystem();
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel, "t");
  const FileId file = kernel.page_cache().CreateFile(8);
  const EffAddr dst(kUserDataBase);
  kernel.FileRead(file, 0, 8 * kPageSize, dst);
  const uint64_t misses_after_first = kernel.page_cache().cache_misses();
  kernel.FileRead(file, 0, 8 * kPageSize, dst);
  EXPECT_EQ(kernel.page_cache().cache_misses(), misses_after_first);
  EXPECT_GT(kernel.page_cache().cache_hits(), 0u);
}

TEST(KernelTest, MmapAnonymousThenTouch) {
  System sys = MakeSystem();
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel, "t");
  const uint32_t start = kernel.Mmap(16);
  EXPECT_GE(start, kUserMmapBase >> kPageShift);
  kernel.UserTouch(EffAddr::FromPage(start + 7), AccessKind::kStore);
  kernel.Munmap(start, 16);
  EXPECT_THROW(kernel.UserTouch(EffAddr::FromPage(start + 7), AccessKind::kLoad),
               CheckFailure);
}

TEST(KernelTest, MmapFileSharesPageCacheFrames) {
  System sys = MakeSystem();
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel, "t");
  const FileId file = kernel.page_cache().CreateFile(8);
  const uint32_t start =
      kernel.Mmap(8, MmapOptions{.file = file, .writable = false});
  kernel.UserTouch(EffAddr::FromPage(start + 2), AccessKind::kLoad);
  const auto pte = kernel.task(t).mm->page_table->LookupQuiet(EffAddr::FromPage(start + 2));
  ASSERT_TRUE(pte.has_value());
  EXPECT_TRUE(kernel.page_cache().IsCached(file, 2));
  EXPECT_FALSE(pte->writable);
  EXPECT_EQ(kernel.allocator().RefCount(pte->frame), 2u);  // page cache + mapping
  kernel.Munmap(start, 8);
  EXPECT_TRUE(kernel.page_cache().IsCached(file, 2));  // cache copy survives
}

TEST(KernelTest, MmapFixedReplacesExistingMapping) {
  System sys = MakeSystem();
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel, "t");
  const uint32_t fixed = (kUserMmapBase >> kPageShift) + 0x200;
  kernel.Mmap(8, MmapOptions{.fixed_page = fixed});
  kernel.UserTouch(EffAddr::FromPage(fixed), AccessKind::kStore);
  const HwCounters before = sys.counters();
  kernel.Mmap(8, MmapOptions{.fixed_page = fixed});
  // The replacement flushed the old context one way or another.
  const HwCounters delta = sys.counters().Diff(before);
  EXPECT_GT(delta.tlb_page_flushes + delta.tlb_context_flushes, 0u);
  // And the fresh mapping demand-faults from scratch.
  const HwCounters before2 = sys.counters();
  kernel.UserTouch(EffAddr::FromPage(fixed), AccessKind::kLoad);
  EXPECT_EQ(sys.counters().Diff(before2).page_faults, 1u);
}

TEST(KernelTest, NullSyscallCountsAndCharges) {
  System sys = MakeSystem();
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel, "t");
  const HwCounters before = sys.counters();
  kernel.NullSyscall();
  const HwCounters delta = sys.counters().Diff(before);
  EXPECT_EQ(delta.syscalls, 1u);
  EXPECT_GT(delta.cycles, 0u);
}

TEST(KernelTest, ContextSwitchReloadsSegments) {
  System sys = MakeSystem();
  Kernel& kernel = sys.kernel();
  const TaskId a = SpawnStd(kernel, "a");
  const TaskId b = SpawnStd(kernel, "b");
  kernel.SwitchTo(a);
  const Vsid vsid_a = sys.mmu().segments().Get(0);
  kernel.SwitchTo(b);
  const Vsid vsid_b = sys.mmu().segments().Get(0);
  EXPECT_NE(vsid_a, vsid_b);
  EXPECT_EQ(vsid_a, kernel.vsids().UserVsid(kernel.task(a).mm->context, 0));
  EXPECT_EQ(vsid_b, kernel.vsids().UserVsid(kernel.task(b).mm->context, 0));
  // Kernel segments are untouched by the switch.
  EXPECT_EQ(sys.mmu().segments().Get(12), VsidSpace::KernelVsid(12));
}

TEST(KernelTest, TasksAreIsolated) {
  System sys = MakeSystem();
  Kernel& kernel = sys.kernel();
  const TaskId a = SpawnStd(kernel, "a");
  const TaskId b = SpawnStd(kernel, "b");
  const EffAddr ea(kUserDataBase);
  kernel.SwitchTo(a);
  kernel.UserTouch(ea, AccessKind::kStore);
  kernel.SwitchTo(b);
  kernel.UserTouch(ea, AccessKind::kStore);
  const uint32_t frame_a = kernel.task(a).mm->page_table->LookupQuiet(ea)->frame;
  const uint32_t frame_b = kernel.task(b).mm->page_table->LookupQuiet(ea)->frame;
  EXPECT_NE(frame_a, frame_b);
}

TEST(KernelTest, BatMappingKeepsKernelOutOfTlb) {
  OptimizationConfig with_bat = OptimizationConfig::Baseline();
  with_bat.kernel_bat_mapping = true;
  System sys_bat(MachineConfig::Ppc604(185), with_bat);
  System sys_nobat(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());

  for (System* sys : {&sys_bat, &sys_nobat}) {
    Kernel& kernel = sys->kernel();
    const TaskId t = SpawnStd(kernel, "t");
    for (int i = 0; i < 50; ++i) {
      kernel.NullSyscall();
      kernel.UserTouch(EffAddr(kUserDataBase + (i % 8) * 64), AccessKind::kLoad);
    }
    (void)t;
  }
  EXPECT_EQ(sys_bat.counters().kernel_tlb_highwater, 0u);
  EXPECT_GT(sys_nobat.counters().kernel_tlb_highwater, 5u);
  EXPECT_GT(sys_bat.counters().bat_translations, 0u);
  EXPECT_EQ(sys_nobat.counters().bat_translations, 0u);
}

TEST(KernelTest, SwitchToZombieOrUnknownThrows) {
  System sys = MakeSystem();
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel, "t");
  kernel.Exit(t);
  EXPECT_THROW(kernel.SwitchTo(t), CheckFailure);
  EXPECT_THROW(kernel.task(TaskId{9999}), CheckFailure);
}

}  // namespace
}  // namespace ppcmm
