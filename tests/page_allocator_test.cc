// PageAllocator tests: allocation, reference counting for COW, misuse detection.

#include <gtest/gtest.h>

#include <set>

#include "src/pagetable/page_allocator.h"
#include "src/sim/check.h"

namespace ppcmm {
namespace {

TEST(PageAllocatorTest, AllocatesDistinctFramesInRange) {
  PageAllocator alloc(100, 10);
  std::set<uint32_t> seen;
  for (int i = 0; i < 10; ++i) {
    const auto frame = alloc.Alloc();
    ASSERT_TRUE(frame.has_value());
    EXPECT_GE(*frame, 100u);
    EXPECT_LT(*frame, 110u);
    EXPECT_TRUE(seen.insert(*frame).second) << "duplicate frame " << *frame;
  }
  EXPECT_FALSE(alloc.Alloc().has_value());  // exhausted
  EXPECT_EQ(alloc.FreeCount(), 0u);
  EXPECT_EQ(alloc.AllocatedCount(), 10u);
}

TEST(PageAllocatorTest, LowFramesFirst) {
  PageAllocator alloc(100, 10);
  EXPECT_EQ(alloc.Alloc(), 100u);
  EXPECT_EQ(alloc.Alloc(), 101u);
}

TEST(PageAllocatorTest, FreeingMakesFramesReusable) {
  PageAllocator alloc(0, 2);
  const uint32_t a = *alloc.Alloc();
  const uint32_t b = *alloc.Alloc();
  EXPECT_FALSE(alloc.Alloc().has_value());
  EXPECT_TRUE(alloc.DecRef(a));
  const auto again = alloc.Alloc();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, a);  // LIFO reuse
  EXPECT_TRUE(alloc.DecRef(b));
  EXPECT_TRUE(alloc.DecRef(*again));
  EXPECT_EQ(alloc.FreeCount(), 2u);
}

TEST(PageAllocatorTest, RefCountingSharesFrames) {
  PageAllocator alloc(0, 4);
  const uint32_t frame = *alloc.Alloc();
  EXPECT_EQ(alloc.RefCount(frame), 1u);
  alloc.AddRef(frame);
  alloc.AddRef(frame);
  EXPECT_EQ(alloc.RefCount(frame), 3u);
  EXPECT_FALSE(alloc.DecRef(frame));  // still shared
  EXPECT_FALSE(alloc.DecRef(frame));
  EXPECT_TRUE(alloc.DecRef(frame));  // last reference frees
  EXPECT_EQ(alloc.RefCount(frame), 0u);
}

TEST(PageAllocatorTest, MisuseThrows) {
  PageAllocator alloc(10, 4);
  EXPECT_THROW(alloc.AddRef(9), CheckFailure);    // out of range
  EXPECT_THROW(alloc.AddRef(14), CheckFailure);   // out of range
  EXPECT_THROW(alloc.DecRef(10), CheckFailure);   // never allocated
  const uint32_t frame = *alloc.Alloc();
  EXPECT_THROW(alloc.AddRef(frame + 1), CheckFailure);  // unallocated in-range frame
  alloc.DecRef(frame);
  EXPECT_THROW(alloc.DecRef(frame), CheckFailure);  // double free
}

TEST(PageAllocatorTest, ZeroFramesRejected) {
  EXPECT_THROW(PageAllocator(0, 0), CheckFailure);
}

}  // namespace
}  // namespace ppcmm
