// TextTable formatting tests.

#include <gtest/gtest.h>

#include "src/sim/check.h"
#include "src/workloads/report.h"

namespace ppcmm {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"short", "1"});
  table.AddRow({"a much longer name", "2"});
  const std::string out = table.ToString();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Both value cells start at the same column.
  const size_t line1 = out.find("short");
  const size_t line2 = out.find("a much longer name");
  const size_t v1 = out.find('1', line1) - out.rfind('\n', out.find('1', line1));
  const size_t v2 = out.find('2', line2) - out.rfind('\n', out.find('2', line2));
  EXPECT_EQ(v1, v2);
}

TEST(TextTableTest, RejectsMisshapenRows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.AddRow({"only one"}), CheckFailure);
  EXPECT_THROW(table.AddRow({"1", "2", "3"}), CheckFailure);
}

TEST(TextTableTest, Formatters) {
  EXPECT_EQ(TextTable::Us(41.26), "41.3 us");
  EXPECT_EQ(TextTable::Us(3240.4), "3240 us");
  EXPECT_EQ(TextTable::Mbs(52.04), "52.0 MB/s");
  EXPECT_EQ(TextTable::Pct(0.754), "75%");
  EXPECT_EQ(TextTable::Num(1.856, 2), "1.86");
  EXPECT_EQ(TextTable::Num(3.0, 0), "3");
  EXPECT_EQ(TextTable::Count(16384), "16384");
}

}  // namespace
}  // namespace ppcmm
