// Framebuffer / I/O aperture tests (§5.1's frame-buffer discussion, built as an extension).

#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/kernel/layout.h"

namespace ppcmm {
namespace {

TaskId SpawnStd(Kernel& kernel, const char* name = "t") {
  const TaskId id = kernel.CreateTask(name);
  kernel.Exec(id, ExecImage{.text_pages = 4, .data_pages = 32, .stack_pages = 2});
  kernel.SwitchTo(id);
  return id;
}

TEST(FramebufferTest, ApertureIsCarvedOutOfTheAllocator) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  const uint32_t fb_first = kernel.FramebufferFirstFrame();
  EXPECT_EQ(fb_first, 8192u - 512u);  // 32 MB RAM, 2 MB aperture
  // The allocator must never hand out an aperture frame.
  EXPECT_LE(kernel.allocator().first_frame() + kernel.allocator().TotalCount(), fb_first);
  EXPECT_TRUE(kernel.IsIoFrame(fb_first));
  EXPECT_FALSE(kernel.IsIoFrame(fb_first - 1));
}

TEST(FramebufferTest, WritesLandInTheAperture) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel);
  const uint32_t start = kernel.MapFramebuffer();
  EXPECT_EQ(start, kUserFramebufferBase >> kPageShift);

  const EffAddr pixel(kUserFramebufferBase + 5 * kPageSize + 0x40);
  kernel.UserTouch(pixel, AccessKind::kStore);
  const auto pte = kernel.task(t).mm->page_table->LookupQuiet(pixel);
  ASSERT_TRUE(pte.has_value());
  EXPECT_EQ(pte->frame, kernel.FramebufferFirstFrame() + 5);
  EXPECT_TRUE(pte->cache_inhibited);
  // The MMU resolves the address into the aperture.
  const auto pa = sys.mmu().Probe(pixel, AccessKind::kStore);
  ASSERT_TRUE(pa.has_value());
  EXPECT_EQ(pa->PageFrame(), kernel.FramebufferFirstFrame() + 5);
}

TEST(FramebufferTest, AccessesBypassTheDataCache) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel);
  kernel.MapFramebuffer();
  const uint64_t uncached_before = sys.machine().dcache().stats().uncached_accesses;
  kernel.UserTouchRange(EffAddr(kUserFramebufferBase), 8 * kPageSize, 64, AccessKind::kStore);
  EXPECT_GT(sys.machine().dcache().stats().uncached_accesses, uncached_before + 100);
}

TEST(FramebufferTest, BatVariantUsesNoTlbEntries) {
  OptimizationConfig with_bat = OptimizationConfig::AllOptimizations();
  with_bat.framebuffer_bat = true;
  System bat_sys(MachineConfig::Ppc604(185), with_bat);
  System pte_sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());

  for (System* sys : {&bat_sys, &pte_sys}) {
    Kernel& kernel = sys->kernel();
    SpawnStd(kernel);
    kernel.MapFramebuffer();
    const HwCounters before = sys->counters();
    // Scribble across 256 framebuffer pages: way past the DTLB reach.
    for (uint32_t page = 0; page < 256; ++page) {
      kernel.UserTouch(EffAddr(kUserFramebufferBase + page * kPageSize), AccessKind::kStore);
    }
    const HwCounters delta = sys->counters().Diff(before);
    if (sys == &bat_sys) {
      EXPECT_EQ(delta.dtlb_misses, 0u);
      EXPECT_EQ(delta.page_faults, 0u);
      EXPECT_GT(delta.bat_translations, 250u);
    } else {
      EXPECT_GE(delta.page_faults, 256u);
      EXPECT_GE(delta.dtlb_misses, 256u);
    }
  }
}

TEST(FramebufferTest, MunmapAndExitLeaveApertureFramesAlone) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  const uint32_t free_before = kernel.allocator().FreeCount();
  const TaskId t = SpawnStd(kernel);
  const uint32_t start = kernel.MapFramebuffer();
  for (uint32_t page = 0; page < 16; ++page) {
    kernel.UserTouch(EffAddr::FromPage(start + page), AccessKind::kStore);
  }
  kernel.Munmap(start, 16);  // must not DecRef aperture frames
  kernel.Exit(t);
  EXPECT_EQ(kernel.allocator().FreeCount(), free_before);
}

TEST(FramebufferTest, ForkSharesTheApertureWithoutCow) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId parent = SpawnStd(kernel, "x");
  const uint32_t start = kernel.MapFramebuffer();
  kernel.UserTouch(EffAddr::FromPage(start), AccessKind::kStore);

  const TaskId child = kernel.Fork(parent);
  kernel.SwitchTo(child);
  // The child writes straight to the same aperture frame — no COW copy.
  kernel.UserTouch(EffAddr::FromPage(start), AccessKind::kStore);
  const auto parent_pte = kernel.task(parent).mm->page_table->LookupQuiet(EffAddr::FromPage(start));
  const auto child_pte = kernel.task(child).mm->page_table->LookupQuiet(EffAddr::FromPage(start));
  ASSERT_TRUE(parent_pte && child_pte);
  EXPECT_EQ(parent_pte->frame, child_pte->frame);
  EXPECT_TRUE(child_pte->writable);
  kernel.Exit(child);
  kernel.Exit(parent);
}

TEST(FramebufferTest, PixelsArePersistentInSimulatedVram) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel);
  const uint32_t start = kernel.MapFramebuffer();
  kernel.UserTouch(EffAddr::FromPage(start, 0x100), AccessKind::kStore);
  // Paint through simulated memory and read it back via the physical aperture.
  const PhysAddr vram = PhysAddr::FromFrame(kernel.FramebufferFirstFrame(), 0x100);
  sys.machine().memory().Write32(vram, 0x00FF00FF);
  EXPECT_EQ(sys.machine().memory().Read32(vram), 0x00FF00FFu);
}

}  // namespace
}  // namespace ppcmm
