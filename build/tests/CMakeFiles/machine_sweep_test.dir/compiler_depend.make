# Empty compiler generated dependencies file for machine_sweep_test.
# This may be replaced when dependencies are built.
