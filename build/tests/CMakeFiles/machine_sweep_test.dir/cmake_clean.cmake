file(REMOVE_RECURSE
  "CMakeFiles/machine_sweep_test.dir/machine_sweep_test.cc.o"
  "CMakeFiles/machine_sweep_test.dir/machine_sweep_test.cc.o.d"
  "machine_sweep_test"
  "machine_sweep_test.pdb"
  "machine_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
