file(REMOVE_RECURSE
  "CMakeFiles/vsid_space_test.dir/vsid_space_test.cc.o"
  "CMakeFiles/vsid_space_test.dir/vsid_space_test.cc.o.d"
  "vsid_space_test"
  "vsid_space_test.pdb"
  "vsid_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsid_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
