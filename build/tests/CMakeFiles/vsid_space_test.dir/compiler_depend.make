# Empty compiler generated dependencies file for vsid_space_test.
# This may be replaced when dependencies are built.
