
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vsid_space_test.cc" "tests/CMakeFiles/vsid_space_test.dir/vsid_space_test.cc.o" "gcc" "tests/CMakeFiles/vsid_space_test.dir/vsid_space_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/ppcmm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ppcmm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ppcmm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/pagetable/CMakeFiles/ppcmm_pagetable.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/ppcmm_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ppcmm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
