file(REMOVE_RECURSE
  "CMakeFiles/l2_cache_test.dir/l2_cache_test.cc.o"
  "CMakeFiles/l2_cache_test.dir/l2_cache_test.cc.o.d"
  "l2_cache_test"
  "l2_cache_test.pdb"
  "l2_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
