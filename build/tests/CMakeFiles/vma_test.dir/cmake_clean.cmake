file(REMOVE_RECURSE
  "CMakeFiles/vma_test.dir/vma_test.cc.o"
  "CMakeFiles/vma_test.dir/vma_test.cc.o.d"
  "vma_test"
  "vma_test.pdb"
  "vma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
