file(REMOVE_RECURSE
  "CMakeFiles/idle_test.dir/idle_test.cc.o"
  "CMakeFiles/idle_test.dir/idle_test.cc.o.d"
  "idle_test"
  "idle_test.pdb"
  "idle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
