# Empty dependencies file for idle_test.
# This may be replaced when dependencies are built.
