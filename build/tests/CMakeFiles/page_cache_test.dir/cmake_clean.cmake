file(REMOVE_RECURSE
  "CMakeFiles/page_cache_test.dir/page_cache_test.cc.o"
  "CMakeFiles/page_cache_test.dir/page_cache_test.cc.o.d"
  "page_cache_test"
  "page_cache_test.pdb"
  "page_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
