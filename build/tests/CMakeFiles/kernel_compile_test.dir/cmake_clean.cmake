file(REMOVE_RECURSE
  "CMakeFiles/kernel_compile_test.dir/kernel_compile_test.cc.o"
  "CMakeFiles/kernel_compile_test.dir/kernel_compile_test.cc.o.d"
  "kernel_compile_test"
  "kernel_compile_test.pdb"
  "kernel_compile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
