file(REMOVE_RECURSE
  "CMakeFiles/lmbench_test.dir/lmbench_test.cc.o"
  "CMakeFiles/lmbench_test.dir/lmbench_test.cc.o.d"
  "lmbench_test"
  "lmbench_test.pdb"
  "lmbench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
