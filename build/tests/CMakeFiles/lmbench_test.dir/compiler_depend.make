# Empty compiler generated dependencies file for lmbench_test.
# This may be replaced when dependencies are built.
