file(REMOVE_RECURSE
  "CMakeFiles/dirty_bit_test.dir/dirty_bit_test.cc.o"
  "CMakeFiles/dirty_bit_test.dir/dirty_bit_test.cc.o.d"
  "dirty_bit_test"
  "dirty_bit_test.pdb"
  "dirty_bit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirty_bit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
