# Empty dependencies file for dirty_bit_test.
# This may be replaced when dependencies are built.
