file(REMOVE_RECURSE
  "CMakeFiles/os_models_test.dir/os_models_test.cc.o"
  "CMakeFiles/os_models_test.dir/os_models_test.cc.o.d"
  "os_models_test"
  "os_models_test.pdb"
  "os_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
