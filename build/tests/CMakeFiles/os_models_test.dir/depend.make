# Empty dependencies file for os_models_test.
# This may be replaced when dependencies are built.
