# Empty dependencies file for segment_regs_test.
# This may be replaced when dependencies are built.
