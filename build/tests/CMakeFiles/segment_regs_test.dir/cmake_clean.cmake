file(REMOVE_RECURSE
  "CMakeFiles/segment_regs_test.dir/segment_regs_test.cc.o"
  "CMakeFiles/segment_regs_test.dir/segment_regs_test.cc.o.d"
  "segment_regs_test"
  "segment_regs_test.pdb"
  "segment_regs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_regs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
