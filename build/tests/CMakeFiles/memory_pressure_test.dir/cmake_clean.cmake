file(REMOVE_RECURSE
  "CMakeFiles/memory_pressure_test.dir/memory_pressure_test.cc.o"
  "CMakeFiles/memory_pressure_test.dir/memory_pressure_test.cc.o.d"
  "memory_pressure_test"
  "memory_pressure_test.pdb"
  "memory_pressure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_pressure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
