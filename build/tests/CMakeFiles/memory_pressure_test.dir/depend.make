# Empty dependencies file for memory_pressure_test.
# This may be replaced when dependencies are built.
