file(REMOVE_RECURSE
  "CMakeFiles/machine_config_test.dir/machine_config_test.cc.o"
  "CMakeFiles/machine_config_test.dir/machine_config_test.cc.o.d"
  "machine_config_test"
  "machine_config_test.pdb"
  "machine_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
