# Empty compiler generated dependencies file for framebuffer_test.
# This may be replaced when dependencies are built.
