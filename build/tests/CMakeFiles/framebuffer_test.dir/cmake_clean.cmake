file(REMOVE_RECURSE
  "CMakeFiles/framebuffer_test.dir/framebuffer_test.cc.o"
  "CMakeFiles/framebuffer_test.dir/framebuffer_test.cc.o.d"
  "framebuffer_test"
  "framebuffer_test.pdb"
  "framebuffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/framebuffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
