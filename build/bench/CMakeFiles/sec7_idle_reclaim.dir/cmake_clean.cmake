file(REMOVE_RECURSE
  "CMakeFiles/sec7_idle_reclaim.dir/sec7_idle_reclaim.cc.o"
  "CMakeFiles/sec7_idle_reclaim.dir/sec7_idle_reclaim.cc.o.d"
  "sec7_idle_reclaim"
  "sec7_idle_reclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_idle_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
