# Empty dependencies file for sec7_idle_reclaim.
# This may be replaced when dependencies are built.
