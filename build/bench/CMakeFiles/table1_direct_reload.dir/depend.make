# Empty dependencies file for table1_direct_reload.
# This may be replaced when dependencies are built.
