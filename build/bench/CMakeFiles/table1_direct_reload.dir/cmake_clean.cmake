file(REMOVE_RECURSE
  "CMakeFiles/table1_direct_reload.dir/table1_direct_reload.cc.o"
  "CMakeFiles/table1_direct_reload.dir/table1_direct_reload.cc.o.d"
  "table1_direct_reload"
  "table1_direct_reload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_direct_reload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
