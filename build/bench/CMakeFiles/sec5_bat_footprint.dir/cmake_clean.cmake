file(REMOVE_RECURSE
  "CMakeFiles/sec5_bat_footprint.dir/sec5_bat_footprint.cc.o"
  "CMakeFiles/sec5_bat_footprint.dir/sec5_bat_footprint.cc.o.d"
  "sec5_bat_footprint"
  "sec5_bat_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_bat_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
