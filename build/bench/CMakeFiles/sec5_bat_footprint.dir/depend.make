# Empty dependencies file for sec5_bat_footprint.
# This may be replaced when dependencies are built.
