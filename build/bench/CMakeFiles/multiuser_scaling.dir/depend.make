# Empty dependencies file for multiuser_scaling.
# This may be replaced when dependencies are built.
