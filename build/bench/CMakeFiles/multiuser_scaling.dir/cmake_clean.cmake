file(REMOVE_RECURSE
  "CMakeFiles/multiuser_scaling.dir/multiuser_scaling.cc.o"
  "CMakeFiles/multiuser_scaling.dir/multiuser_scaling.cc.o.d"
  "multiuser_scaling"
  "multiuser_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiuser_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
