file(REMOVE_RECURSE
  "CMakeFiles/sec9_idle_page_clear.dir/sec9_idle_page_clear.cc.o"
  "CMakeFiles/sec9_idle_page_clear.dir/sec9_idle_page_clear.cc.o.d"
  "sec9_idle_page_clear"
  "sec9_idle_page_clear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec9_idle_page_clear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
