# Empty dependencies file for sec9_idle_page_clear.
# This may be replaced when dependencies are built.
