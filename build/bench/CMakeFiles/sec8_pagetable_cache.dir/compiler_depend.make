# Empty compiler generated dependencies file for sec8_pagetable_cache.
# This may be replaced when dependencies are built.
