file(REMOVE_RECURSE
  "CMakeFiles/sec8_pagetable_cache.dir/sec8_pagetable_cache.cc.o"
  "CMakeFiles/sec8_pagetable_cache.dir/sec8_pagetable_cache.cc.o.d"
  "sec8_pagetable_cache"
  "sec8_pagetable_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec8_pagetable_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
