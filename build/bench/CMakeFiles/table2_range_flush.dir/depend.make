# Empty dependencies file for table2_range_flush.
# This may be replaced when dependencies are built.
