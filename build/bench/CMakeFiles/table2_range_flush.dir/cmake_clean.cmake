file(REMOVE_RECURSE
  "CMakeFiles/table2_range_flush.dir/table2_range_flush.cc.o"
  "CMakeFiles/table2_range_flush.dir/table2_range_flush.cc.o.d"
  "table2_range_flush"
  "table2_range_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_range_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
