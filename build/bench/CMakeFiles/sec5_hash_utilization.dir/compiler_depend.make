# Empty compiler generated dependencies file for sec5_hash_utilization.
# This may be replaced when dependencies are built.
