file(REMOVE_RECURSE
  "CMakeFiles/sec5_hash_utilization.dir/sec5_hash_utilization.cc.o"
  "CMakeFiles/sec5_hash_utilization.dir/sec5_hash_utilization.cc.o.d"
  "sec5_hash_utilization"
  "sec5_hash_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_hash_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
