# Empty compiler generated dependencies file for sec5_io_bat.
# This may be replaced when dependencies are built.
