file(REMOVE_RECURSE
  "CMakeFiles/sec5_io_bat.dir/sec5_io_bat.cc.o"
  "CMakeFiles/sec5_io_bat.dir/sec5_io_bat.cc.o.d"
  "sec5_io_bat"
  "sec5_io_bat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_io_bat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
