# Empty compiler generated dependencies file for ablation_interactions.
# This may be replaced when dependencies are built.
