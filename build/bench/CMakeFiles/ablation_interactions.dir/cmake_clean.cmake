file(REMOVE_RECURSE
  "CMakeFiles/ablation_interactions.dir/ablation_interactions.cc.o"
  "CMakeFiles/ablation_interactions.dir/ablation_interactions.cc.o.d"
  "ablation_interactions"
  "ablation_interactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
