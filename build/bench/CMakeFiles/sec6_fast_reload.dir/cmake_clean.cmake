file(REMOVE_RECURSE
  "CMakeFiles/sec6_fast_reload.dir/sec6_fast_reload.cc.o"
  "CMakeFiles/sec6_fast_reload.dir/sec6_fast_reload.cc.o.d"
  "sec6_fast_reload"
  "sec6_fast_reload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_fast_reload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
