# Empty dependencies file for sec6_fast_reload.
# This may be replaced when dependencies are built.
