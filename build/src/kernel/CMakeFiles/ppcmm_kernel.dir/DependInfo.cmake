
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/flush.cc" "src/kernel/CMakeFiles/ppcmm_kernel.dir/flush.cc.o" "gcc" "src/kernel/CMakeFiles/ppcmm_kernel.dir/flush.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/kernel/CMakeFiles/ppcmm_kernel.dir/kernel.cc.o" "gcc" "src/kernel/CMakeFiles/ppcmm_kernel.dir/kernel.cc.o.d"
  "/root/repo/src/kernel/mem_manager.cc" "src/kernel/CMakeFiles/ppcmm_kernel.dir/mem_manager.cc.o" "gcc" "src/kernel/CMakeFiles/ppcmm_kernel.dir/mem_manager.cc.o.d"
  "/root/repo/src/kernel/opt_config.cc" "src/kernel/CMakeFiles/ppcmm_kernel.dir/opt_config.cc.o" "gcc" "src/kernel/CMakeFiles/ppcmm_kernel.dir/opt_config.cc.o.d"
  "/root/repo/src/kernel/page_cache.cc" "src/kernel/CMakeFiles/ppcmm_kernel.dir/page_cache.cc.o" "gcc" "src/kernel/CMakeFiles/ppcmm_kernel.dir/page_cache.cc.o.d"
  "/root/repo/src/kernel/vma.cc" "src/kernel/CMakeFiles/ppcmm_kernel.dir/vma.cc.o" "gcc" "src/kernel/CMakeFiles/ppcmm_kernel.dir/vma.cc.o.d"
  "/root/repo/src/kernel/vsid_space.cc" "src/kernel/CMakeFiles/ppcmm_kernel.dir/vsid_space.cc.o" "gcc" "src/kernel/CMakeFiles/ppcmm_kernel.dir/vsid_space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ppcmm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/ppcmm_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/pagetable/CMakeFiles/ppcmm_pagetable.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
