# Empty compiler generated dependencies file for ppcmm_kernel.
# This may be replaced when dependencies are built.
