file(REMOVE_RECURSE
  "CMakeFiles/ppcmm_kernel.dir/flush.cc.o"
  "CMakeFiles/ppcmm_kernel.dir/flush.cc.o.d"
  "CMakeFiles/ppcmm_kernel.dir/kernel.cc.o"
  "CMakeFiles/ppcmm_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/ppcmm_kernel.dir/mem_manager.cc.o"
  "CMakeFiles/ppcmm_kernel.dir/mem_manager.cc.o.d"
  "CMakeFiles/ppcmm_kernel.dir/opt_config.cc.o"
  "CMakeFiles/ppcmm_kernel.dir/opt_config.cc.o.d"
  "CMakeFiles/ppcmm_kernel.dir/page_cache.cc.o"
  "CMakeFiles/ppcmm_kernel.dir/page_cache.cc.o.d"
  "CMakeFiles/ppcmm_kernel.dir/vma.cc.o"
  "CMakeFiles/ppcmm_kernel.dir/vma.cc.o.d"
  "CMakeFiles/ppcmm_kernel.dir/vsid_space.cc.o"
  "CMakeFiles/ppcmm_kernel.dir/vsid_space.cc.o.d"
  "libppcmm_kernel.a"
  "libppcmm_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppcmm_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
