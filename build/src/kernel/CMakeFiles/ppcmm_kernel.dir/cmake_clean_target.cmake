file(REMOVE_RECURSE
  "libppcmm_kernel.a"
)
