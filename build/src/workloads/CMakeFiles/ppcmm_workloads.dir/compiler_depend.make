# Empty compiler generated dependencies file for ppcmm_workloads.
# This may be replaced when dependencies are built.
