file(REMOVE_RECURSE
  "libppcmm_workloads.a"
)
