file(REMOVE_RECURSE
  "CMakeFiles/ppcmm_workloads.dir/coop.cc.o"
  "CMakeFiles/ppcmm_workloads.dir/coop.cc.o.d"
  "CMakeFiles/ppcmm_workloads.dir/kernel_compile.cc.o"
  "CMakeFiles/ppcmm_workloads.dir/kernel_compile.cc.o.d"
  "CMakeFiles/ppcmm_workloads.dir/lmbench.cc.o"
  "CMakeFiles/ppcmm_workloads.dir/lmbench.cc.o.d"
  "CMakeFiles/ppcmm_workloads.dir/multiuser.cc.o"
  "CMakeFiles/ppcmm_workloads.dir/multiuser.cc.o.d"
  "CMakeFiles/ppcmm_workloads.dir/os_models.cc.o"
  "CMakeFiles/ppcmm_workloads.dir/os_models.cc.o.d"
  "CMakeFiles/ppcmm_workloads.dir/report.cc.o"
  "CMakeFiles/ppcmm_workloads.dir/report.cc.o.d"
  "CMakeFiles/ppcmm_workloads.dir/xserver.cc.o"
  "CMakeFiles/ppcmm_workloads.dir/xserver.cc.o.d"
  "libppcmm_workloads.a"
  "libppcmm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppcmm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
