
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/coop.cc" "src/workloads/CMakeFiles/ppcmm_workloads.dir/coop.cc.o" "gcc" "src/workloads/CMakeFiles/ppcmm_workloads.dir/coop.cc.o.d"
  "/root/repo/src/workloads/kernel_compile.cc" "src/workloads/CMakeFiles/ppcmm_workloads.dir/kernel_compile.cc.o" "gcc" "src/workloads/CMakeFiles/ppcmm_workloads.dir/kernel_compile.cc.o.d"
  "/root/repo/src/workloads/lmbench.cc" "src/workloads/CMakeFiles/ppcmm_workloads.dir/lmbench.cc.o" "gcc" "src/workloads/CMakeFiles/ppcmm_workloads.dir/lmbench.cc.o.d"
  "/root/repo/src/workloads/multiuser.cc" "src/workloads/CMakeFiles/ppcmm_workloads.dir/multiuser.cc.o" "gcc" "src/workloads/CMakeFiles/ppcmm_workloads.dir/multiuser.cc.o.d"
  "/root/repo/src/workloads/os_models.cc" "src/workloads/CMakeFiles/ppcmm_workloads.dir/os_models.cc.o" "gcc" "src/workloads/CMakeFiles/ppcmm_workloads.dir/os_models.cc.o.d"
  "/root/repo/src/workloads/report.cc" "src/workloads/CMakeFiles/ppcmm_workloads.dir/report.cc.o" "gcc" "src/workloads/CMakeFiles/ppcmm_workloads.dir/report.cc.o.d"
  "/root/repo/src/workloads/xserver.cc" "src/workloads/CMakeFiles/ppcmm_workloads.dir/xserver.cc.o" "gcc" "src/workloads/CMakeFiles/ppcmm_workloads.dir/xserver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ppcmm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ppcmm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/pagetable/CMakeFiles/ppcmm_pagetable.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/ppcmm_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ppcmm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
