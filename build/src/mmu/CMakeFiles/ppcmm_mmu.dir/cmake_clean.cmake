file(REMOVE_RECURSE
  "CMakeFiles/ppcmm_mmu.dir/bat.cc.o"
  "CMakeFiles/ppcmm_mmu.dir/bat.cc.o.d"
  "CMakeFiles/ppcmm_mmu.dir/hash_table.cc.o"
  "CMakeFiles/ppcmm_mmu.dir/hash_table.cc.o.d"
  "CMakeFiles/ppcmm_mmu.dir/mmu.cc.o"
  "CMakeFiles/ppcmm_mmu.dir/mmu.cc.o.d"
  "CMakeFiles/ppcmm_mmu.dir/tlb.cc.o"
  "CMakeFiles/ppcmm_mmu.dir/tlb.cc.o.d"
  "libppcmm_mmu.a"
  "libppcmm_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppcmm_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
