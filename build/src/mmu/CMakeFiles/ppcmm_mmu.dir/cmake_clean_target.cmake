file(REMOVE_RECURSE
  "libppcmm_mmu.a"
)
