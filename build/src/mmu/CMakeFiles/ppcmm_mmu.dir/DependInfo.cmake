
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmu/bat.cc" "src/mmu/CMakeFiles/ppcmm_mmu.dir/bat.cc.o" "gcc" "src/mmu/CMakeFiles/ppcmm_mmu.dir/bat.cc.o.d"
  "/root/repo/src/mmu/hash_table.cc" "src/mmu/CMakeFiles/ppcmm_mmu.dir/hash_table.cc.o" "gcc" "src/mmu/CMakeFiles/ppcmm_mmu.dir/hash_table.cc.o.d"
  "/root/repo/src/mmu/mmu.cc" "src/mmu/CMakeFiles/ppcmm_mmu.dir/mmu.cc.o" "gcc" "src/mmu/CMakeFiles/ppcmm_mmu.dir/mmu.cc.o.d"
  "/root/repo/src/mmu/tlb.cc" "src/mmu/CMakeFiles/ppcmm_mmu.dir/tlb.cc.o" "gcc" "src/mmu/CMakeFiles/ppcmm_mmu.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ppcmm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
