# Empty dependencies file for ppcmm_mmu.
# This may be replaced when dependencies are built.
