file(REMOVE_RECURSE
  "libppcmm_core.a"
)
