# Empty dependencies file for ppcmm_core.
# This may be replaced when dependencies are built.
