file(REMOVE_RECURSE
  "CMakeFiles/ppcmm_core.dir/stats.cc.o"
  "CMakeFiles/ppcmm_core.dir/stats.cc.o.d"
  "libppcmm_core.a"
  "libppcmm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppcmm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
