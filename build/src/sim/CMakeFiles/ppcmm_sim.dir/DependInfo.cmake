
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/ppcmm_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/ppcmm_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/hw_counters.cc" "src/sim/CMakeFiles/ppcmm_sim.dir/hw_counters.cc.o" "gcc" "src/sim/CMakeFiles/ppcmm_sim.dir/hw_counters.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/ppcmm_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/ppcmm_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/machine_config.cc" "src/sim/CMakeFiles/ppcmm_sim.dir/machine_config.cc.o" "gcc" "src/sim/CMakeFiles/ppcmm_sim.dir/machine_config.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/ppcmm_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/ppcmm_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/ppcmm_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/ppcmm_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
