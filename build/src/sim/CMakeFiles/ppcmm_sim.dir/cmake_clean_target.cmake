file(REMOVE_RECURSE
  "libppcmm_sim.a"
)
