# Empty dependencies file for ppcmm_sim.
# This may be replaced when dependencies are built.
