file(REMOVE_RECURSE
  "CMakeFiles/ppcmm_sim.dir/cache.cc.o"
  "CMakeFiles/ppcmm_sim.dir/cache.cc.o.d"
  "CMakeFiles/ppcmm_sim.dir/hw_counters.cc.o"
  "CMakeFiles/ppcmm_sim.dir/hw_counters.cc.o.d"
  "CMakeFiles/ppcmm_sim.dir/machine.cc.o"
  "CMakeFiles/ppcmm_sim.dir/machine.cc.o.d"
  "CMakeFiles/ppcmm_sim.dir/machine_config.cc.o"
  "CMakeFiles/ppcmm_sim.dir/machine_config.cc.o.d"
  "CMakeFiles/ppcmm_sim.dir/memory.cc.o"
  "CMakeFiles/ppcmm_sim.dir/memory.cc.o.d"
  "CMakeFiles/ppcmm_sim.dir/trace.cc.o"
  "CMakeFiles/ppcmm_sim.dir/trace.cc.o.d"
  "libppcmm_sim.a"
  "libppcmm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppcmm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
