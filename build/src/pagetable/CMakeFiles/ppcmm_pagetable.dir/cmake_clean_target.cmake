file(REMOVE_RECURSE
  "libppcmm_pagetable.a"
)
