file(REMOVE_RECURSE
  "CMakeFiles/ppcmm_pagetable.dir/page_allocator.cc.o"
  "CMakeFiles/ppcmm_pagetable.dir/page_allocator.cc.o.d"
  "CMakeFiles/ppcmm_pagetable.dir/page_table.cc.o"
  "CMakeFiles/ppcmm_pagetable.dir/page_table.cc.o.d"
  "libppcmm_pagetable.a"
  "libppcmm_pagetable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppcmm_pagetable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
