# Empty compiler generated dependencies file for ppcmm_pagetable.
# This may be replaced when dependencies are built.
