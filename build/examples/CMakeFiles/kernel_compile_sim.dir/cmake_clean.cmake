file(REMOVE_RECURSE
  "CMakeFiles/kernel_compile_sim.dir/kernel_compile_sim.cpp.o"
  "CMakeFiles/kernel_compile_sim.dir/kernel_compile_sim.cpp.o.d"
  "kernel_compile_sim"
  "kernel_compile_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_compile_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
