# Empty compiler generated dependencies file for kernel_compile_sim.
# This may be replaced when dependencies are built.
