# Empty compiler generated dependencies file for tlb_explorer.
# This may be replaced when dependencies are built.
