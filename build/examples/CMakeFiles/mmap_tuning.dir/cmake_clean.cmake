file(REMOVE_RECURSE
  "CMakeFiles/mmap_tuning.dir/mmap_tuning.cpp.o"
  "CMakeFiles/mmap_tuning.dir/mmap_tuning.cpp.o.d"
  "mmap_tuning"
  "mmap_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmap_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
