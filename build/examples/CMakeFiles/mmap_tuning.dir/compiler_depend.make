# Empty compiler generated dependencies file for mmap_tuning.
# This may be replaced when dependencies are built.
