# Empty dependencies file for xserver_demo.
# This may be replaced when dependencies are built.
