file(REMOVE_RECURSE
  "CMakeFiles/xserver_demo.dir/xserver_demo.cpp.o"
  "CMakeFiles/xserver_demo.dir/xserver_demo.cpp.o.d"
  "xserver_demo"
  "xserver_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xserver_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
